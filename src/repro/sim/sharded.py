"""Conservative parallel simulation across subtree shard processes.

The sharded engine (``SimConfig(engine="sharded", shards=K)``) runs a
fat-tree subnet as ``K`` single-process :class:`WheelEngine` shards —
one per block of top-level subtrees (:mod:`repro.topology.partition`)
— synchronized by a coordinator with a conservative barrier-window
protocol (DESIGN.md §12, transport and overlap in §14):

* **Lookahead.**  Both cross-shard interactions — header delivery on a
  cut link and the credit returning across it — are staged at schedule
  time with apply time exactly ``now + flying_time_ns``
  (:mod:`repro.ib.proxy`).  A message produced anywhere in a window
  therefore applies strictly after any window of length
  ``L = flying_time_ns``.
* **Windows.**  At each barrier the coordinator computes the fleet
  floor ``A`` — the minimum over every shard's next-event time and
  every undelivered message's apply time — and runs the fleet to
  ``min(target, A + L)``; nothing anywhere can fire before ``A``, so
  no message can apply at or before ``A + L`` that isn't already
  known.  An idle fleet (``A = inf``) jumps straight to the target,
  and a fleet with *no cut links* (``shards=1``) runs the whole span
  as one window.
* **Overlapped control plane.**  Every piece of state the coordinator
  needs for window ``k+1`` — each shard's next-event time, the minimum
  apply time of its locally-held undelivered messages, and the
  watermarks of what it wrote to its outbound rings — piggybacks on
  window ``k``'s completion frame, so a window costs exactly one
  batched send pass and one batched receive pass.  Shards with nothing
  to do in a window (next event, due message and due ring records all
  beyond ``t_end``) are *skipped* — no round trip; their clocks lag
  safely behind (anything later delivered to them applies beyond their
  stalled ``now``) and the terminal window of ``run_to`` re-syncs
  every clock to the target.
* **Transports.**  ``cfg.shard_transport`` picks the data plane.
  ``"shm"`` (default): packets and credits travel as packed 64-byte
  records through per-directed-pair shared-memory rings
  (:mod:`repro.ib.wire`) and the pipes carry only control frames —
  grants out, ``(peek, now, pending-min, watermarks)`` back; the
  coordinator never touches a payload.  ``"pipe"``: the original
  pickled-tuple batches ride the control frames themselves (the
  differential oracle, and required for ``record_routes``).  Both
  transports produce bit-identical runs: the floor sequence is equal
  (the same undelivered-message set, viewed as coordinator-held
  batches or as watermarks + shard-held pending) and the injection
  order is equal (sorted by apply time, source shard, per-source
  production index).
* **Determinism.**  Per-destination inbound messages are sorted by
  (apply time, source shard, production index) before injection, and
  every shard indexes the full ``spawn_rngs(seed, num_nodes)`` spawn
  by PID, so a run is bit-deterministic for a given shard count.
  Same-time events separated by a shard boundary may interleave
  differently than in the monolithic engine, so cross-engine agreement
  is statistical, not bitwise (the differential suite pins the
  tolerance); conservation invariants merge exactly.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time as _time_mod
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ib.config import SimConfig

__all__ = [
    "ShardSpec",
    "ShardedRun",
    "run_sharded_point",
    "run_sharded_probe",
    "merge_conservation",
    "merge_latency_parts",
    "merge_window_profiles",
    "fabric_report_from_parts",
    "loss_rows_from_parts",
    "routing_pressure_from_parts",
]

#: Safety valve: a drain that needs this many windows is a protocol bug.
_MAX_DRAIN_WINDOWS = 1_000_000

#: Records per directed-pair ring (64 B each → 1 MiB).  Ungranted
#: records become due — and are therefore granted — within about two
#: lookahead windows of being written, so this is orders of magnitude
#: above steady-state occupancy; overflow raises (protocol bug).
_DEFAULT_RING_CAPACITY = 16 * 1024

#: Seconds a coordinator waits on a shard's reply before declaring the
#: fleet wedged (a worker killed by the OOM killer / SIGKILL sends no
#: "err" frame and would otherwise hang ``recv`` forever).
_DEFAULT_RECV_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build its shard."""

    m: int
    n: int
    scheme: str
    cfg: SimConfig
    seed: int
    shard_id: int
    shards: int
    pattern: Optional[str] = None
    hotspot_fraction: float = 0.5
    script: Tuple[tuple, ...] = ()
    #: Data plane: "pipe" (pickled tuple batches in the control frames)
    #: or "shm" (packed records in shared-memory rings).
    transport: str = "pipe"
    #: Shared-memory run token + this shard's ring neighbors (shm only).
    ring_token: str = ""
    out_dests: Tuple[int, ...] = ()
    in_srcs: Tuple[int, ...] = ()


def _pattern_for(pattern: str, num_nodes: int, hotspot_fraction: float):
    from repro.traffic.patterns import make_pattern

    if pattern == "centric":
        return make_pattern(
            "centric", num_nodes, hot_pid=0, fraction=hotspot_fraction
        )
    return make_pattern(pattern, num_nodes)


def _worker_main(conn, spec: ShardSpec) -> None:
    """Shard process body: build, then serve barrier-window commands.

    The loop keeps a window profile — ``compute_ns`` (engine time),
    ``sync_wait_ns`` (blocked on the coordinator), ``transport_ns``
    (ring drain + inject + reply staging) — attached to the summary as
    ``window_profile``; the buckets partition the wall time between
    the ``ready`` frame and ``collect`` up to command-dispatch noise.
    """
    rings = []
    try:
        from repro.ib.shardnet import build_shard

        use_rings = spec.transport == "shm"
        outbox = None
        rings_in: Dict[int, object] = {}
        if use_rings:
            from repro.ib import wire

            rings_out = wire.attach_outbound(
                spec.ring_token, spec.shard_id, spec.out_dests
            )
            rings_in = wire.attach_inbound(
                spec.ring_token, spec.shard_id, spec.in_srcs
            )
            rings = list(rings_out.values()) + list(rings_in.values())
            outbox = wire.RingOutbox(rings_out)
        net = build_shard(
            spec.m,
            spec.n,
            spec.scheme,
            spec.cfg,
            spec.seed,
            spec.shard_id,
            spec.shards,
            outbox=outbox,
        )
        if spec.pattern is not None:
            net.attach_pattern(
                _pattern_for(
                    spec.pattern, net.ft.num_nodes, spec.hotspot_fraction
                )
            )
        if spec.script:
            net.apply_script(list(spec.script))
        engine = net.engine
        perf = _time_mod.perf_counter_ns
        compute_ns = 0
        sync_wait_ns = 0
        transport_ns = 0
        windows = 0
        #: Granted-but-not-yet-due inbound messages,
        #: (apply_time, src_shard, production_index, kind, chan, payload)
        #: — the shard-local mirror of the pipe transport's
        #: coordinator-held pending list.
        pending: List[tuple] = []
        drained = {src: 0 for src in rings_in}
        conn.send(("ready", engine.peek_time()))
        wall0 = perf()
        while True:
            t0 = perf()
            msg = conn.recv()
            sync_wait_ns += perf() - t0
            cmd = msg[0]
            if cmd == "run":
                _, t_end, grant = msg
                t0 = perf()
                if use_rings:
                    if grant:
                        for src, limit in grant.items():
                            base = drained[src]
                            records = rings_in[src].read_upto(limit)
                            for j, rec in enumerate(records):
                                pending.append(
                                    (rec[0], src, base + j,
                                     rec[1], rec[2], rec[3])
                                )
                            drained[src] = limit
                    if pending:
                        if t_end is None:
                            due, pending = pending, []
                        else:
                            due = [it for it in pending if it[0] <= t_end]
                            if due:
                                pending = [
                                    it for it in pending if it[0] > t_end
                                ]
                        if due:
                            due.sort(key=lambda it: (it[0], it[1], it[2]))
                            net.inject(
                                [(t, k, c, p)
                                 for t, _s, _i, k, c, p in due]
                            )
                elif grant:
                    net.inject(grant)
                transport_ns += perf() - t0
                t0 = perf()
                if t_end is None:
                    engine.run()
                elif t_end > engine.now:
                    engine.run(until=t_end)
                compute_ns += perf() - t0
                t0 = perf()
                if use_rings:
                    payload = outbox.drain_watermarks()
                    pend_min = min(
                        (it[0] for it in pending), default=math.inf
                    )
                else:
                    payload = net.outbox.drain()
                    pend_min = math.inf
                conn.send(
                    ("win", engine.peek_time(), engine.now, pend_min,
                     payload)
                )
                transport_ns += perf() - t0
                windows += 1
            elif cmd == "begin":
                _, offered, warmup, measure = msg
                net.begin_measurement(offered, warmup, measure)
                conn.send(("ok", engine.peek_time()))
            elif cmd == "gen":
                rate = spec.cfg.offered_load_to_rate(msg[1])
                for node in net.endnodes:
                    node.start_generation(rate)
                conn.send(("ok", engine.peek_time()))
            elif cmd == "stopgen":
                net.stop_generation()
                conn.send(("ok", engine.peek_time()))
            elif cmd == "collect":
                summary = net.summary(include_links=msg[1])
                summary["window_profile"] = {
                    "windows": windows,
                    "compute_ns": compute_ns,
                    "sync_wait_ns": sync_wait_ns,
                    "transport_ns": transport_ns,
                    "wall_ns": perf() - wall0,
                }
                conn.send(("res", summary))
            elif cmd == "exit":
                conn.send(("bye",))
                return
            else:
                raise ValueError(f"unknown coordinator command {cmd!r}")
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        for ring in rings:
            ring.close()
        conn.close()


class ShardedRun:
    """Coordinator for one sharded simulation (context manager).

    Owns the worker processes, the shared-memory rings and the
    conservative clock; exposes the same phases as a monolithic run —
    ``begin``/``generate``, ``run_to``, ``stop_generation``, ``drain``,
    ``collect`` — with the barrier-window protocol hidden inside
    :meth:`run_to`.

    ``recv_timeout_s`` bounds every wait on a worker frame: a shard
    killed without an ``"err"`` frame (OOM, SIGKILL) terminates the
    fleet with a diagnostic instead of hanging the run forever.
    """

    def __init__(
        self,
        m: int,
        n: int,
        scheme: str,
        cfg: SimConfig,
        *,
        seed: int = 1,
        pattern: Optional[str] = None,
        hotspot_fraction: float = 0.5,
        script: Tuple[tuple, ...] = (),
        recv_timeout_s: Optional[float] = _DEFAULT_RECV_TIMEOUT_S,
        ring_capacity: int = _DEFAULT_RING_CAPACITY,
    ):
        if cfg.flying_time_ns <= 0:
            raise ValueError(
                "sharded engine needs flying_time_ns > 0 for lookahead"
            )
        if not isinstance(scheme, str):
            raise TypeError(
                "the sharded engine takes a scheme name, not an instance "
                "(each shard process builds its own)"
            )
        from repro.topology.fattree import FatTree
        from repro.topology.partition import partition_fattree

        self.shards = cfg.shards
        self.lookahead = cfg.flying_time_ns
        # Route traces can't ride fixed-width records: fall back to the
        # pickled-tuple transport for record_routes runs.
        self.transport = "pipe" if cfg.record_routes else cfg.shard_transport
        self.now = 0.0
        self.windows = 0
        self._recv_timeout = recv_timeout_s
        self._procs: List[mp.Process] = []
        self._conns: List = []
        self._peeks: List[float] = []
        self._nows: List[float] = [0.0] * self.shards
        #: Per-shard min apply time of its locally-held undelivered
        #: messages (shm transport; the pipe transport reports inf and
        #: the coordinator holds the messages itself in ``_pending``).
        self._pend_min: List[float] = [math.inf] * self.shards
        #: undelivered messages per destination shard, each annotated
        #: (apply_time, src_shard, batch_index, kind, chan, payload)
        #: — pipe transport only.
        self._pending: List[List[tuple]] = [[] for _ in range(self.shards)]
        self._rings: Dict[Tuple[int, int], object] = {}
        self._closed = False

        # Neighbor graph from the partition's cut links (validates the
        # topology/shard combination before any process is spawned).
        partition = partition_fattree(FatTree(m, n), self.shards)
        pairs = set()
        for link in partition.cut_links:
            a = partition.switch_shard[link.parent.switch]
            b = partition.switch_shard[link.child.switch]
            pairs.add((a, b))
            pairs.add((b, a))
        #: shards=1 ⇒ no cut links ⇒ the conservative constraint is
        #: vacuous: run_to is a single window, drain a run-to-empty.
        self._no_cuts = not pairs
        self._out = {
            s: tuple(sorted(d for (a, d) in pairs if a == s))
            for s in range(self.shards)
        }
        self._in = {
            s: tuple(sorted(a for (a, d) in pairs if d == s))
            for s in range(self.shards)
        }
        #: Per directed pair: records ever written (from watermarks),
        #: records granted to the consumer, and the min apply time of
        #: the written-but-ungranted span (inf when empty).
        self._written = {p: 0 for p in pairs}
        self._granted = {p: 0 for p in pairs}
        self._wm_min = {p: math.inf for p in pairs}

        token = ""
        if self.transport == "shm" and pairs:
            from repro.ib import wire

            token = wire.make_run_token()
            self._rings = wire.create_rings(
                token, sorted(pairs), ring_capacity
            )
        try:
            ctx = mp.get_context()
            for shard_id in range(self.shards):
                parent, child = ctx.Pipe()
                spec = ShardSpec(
                    m=m,
                    n=n,
                    scheme=scheme,
                    cfg=cfg,
                    seed=seed,
                    shard_id=shard_id,
                    shards=self.shards,
                    pattern=pattern,
                    hotspot_fraction=hotspot_fraction,
                    script=tuple(script),
                    transport=self.transport,
                    ring_token=token,
                    out_dests=self._out[shard_id],
                    in_srcs=self._in[shard_id],
                )
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, spec),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            self._peeks = [
                _time(self._recv(i, "ready")) for i in range(self.shards)
            ]
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _send(self, shard: int, msg: tuple) -> None:
        """Send one command, tearing the fleet down if the shard's pipe
        is already dead (a crashed worker fails the *send*, not just
        the reply)."""
        try:
            self._conns[shard].send(msg)
        except (BrokenPipeError, OSError) as exc:
            code = self._procs[shard].exitcode
            self._terminate()
            raise RuntimeError(
                f"shard {shard} is unreachable (exit code {code}): {exc}"
            ) from None

    def _recv_frame(self, shard: int):
        """One worker frame, with the fleet torn down on any failure:
        a remote ``("err", traceback)`` surfaces immediately whatever
        frame was expected, a silent death raises with the exit code,
        and an unresponsive shard trips ``recv_timeout_s``."""
        conn = self._conns[shard]
        if self._recv_timeout is not None and not conn.poll(
            self._recv_timeout
        ):
            self._terminate()
            raise RuntimeError(
                f"shard {shard} sent no frame for {self._recv_timeout}s "
                "— fleet terminated (worker wedged or killed?)"
            )
        try:
            msg = conn.recv()
        except EOFError:
            code = self._procs[shard].exitcode
            self._terminate()
            raise RuntimeError(
                f"shard {shard} exited without a frame "
                f"(exit code {code})"
            ) from None
        if msg[0] == "err":
            self._terminate()
            raise RuntimeError(f"shard {shard} died:\n{msg[1]}")
        return msg

    def _recv(self, shard: int, expect: str):
        msg = self._recv_frame(shard)
        if msg[0] != expect:
            self._terminate()
            raise RuntimeError(
                f"shard {shard}: expected {expect!r}, got {msg[0]!r}"
            )
        return msg[1] if len(msg) > 1 else None

    def _broadcast(self, msg: tuple) -> None:
        """Send one command to every shard; replies refresh the peeks."""
        for shard in range(self.shards):
            self._send(shard, msg)
        for i in range(self.shards):
            self._peeks[i] = _time(self._recv(i, "ok"))

    # ------------------------------------------------------------------
    def begin(
        self, offered: float, warmup_ns: float, measure_ns: float
    ) -> None:
        """Install collectors and start generation on every shard."""
        self._broadcast(("begin", offered, warmup_ns, measure_ns))

    def generate(self, offered: float) -> None:
        """Start generation without measurement collectors (failover)."""
        self._broadcast(("gen", offered))

    def stop_generation(self) -> None:
        self._broadcast(("stopgen",))

    # ------------------------------------------------------------------
    def _floor(self) -> float:
        """Earliest thing that can happen anywhere in the fleet: the
        min over shard next-event times and every undelivered
        message's apply time — wherever that message currently lives
        (coordinator batch, ring, or shard-local pending)."""
        floor = min(self._peeks)
        for v in self._pend_min:
            if v < floor:
                floor = v
        for v in self._wm_min.values():
            if v < floor:
                floor = v
        for batch in self._pending:
            for item in batch:
                if item[0] < floor:
                    floor = item[0]
        return floor

    def _window(self, t_end: Optional[float], final: bool = False) -> None:
        """Advance the fleet one window (single batched send/recv pass).

        Shards with nothing to do before ``t_end`` are skipped — their
        stale peek/pending state remains exact because an unrun shard
        neither fires nor receives anything.  ``final`` forces every
        shard into the window so all clocks land on ``t_end``;
        ``t_end=None`` is the run-to-empty grant (no-cut fleets only).
        """
        shm = self.transport == "shm"
        run_all = final or t_end is None
        active: List[int] = []
        grants: List[object] = []
        for d in range(self.shards):
            if shm:
                grant: Dict[int, int] = {}
                due = False
                for s in self._in[d]:
                    pair = (s, d)
                    written = self._written[pair]
                    if written > self._granted[pair]:
                        grant[s] = written
                    if (
                        t_end is not None
                        and self._wm_min[pair] <= t_end
                    ):
                        due = True
                if not (
                    run_all
                    or due
                    or self._peeks[d] <= t_end
                    or self._pend_min[d] <= t_end
                ):
                    continue
                for s, limit in grant.items():
                    self._granted[(s, d)] = limit
                    self._wm_min[(s, d)] = math.inf
                active.append(d)
                grants.append(grant)
            else:
                batch = self._pending[d]
                has_due = t_end is not None and any(
                    item[0] <= t_end for item in batch
                )
                if not (run_all or has_due or self._peeks[d] <= t_end):
                    continue
                if has_due:
                    now_due = [it for it in batch if it[0] <= t_end]
                    self._pending[d] = [
                        it for it in batch if it[0] > t_end
                    ]
                    now_due.sort(key=lambda it: (it[0], it[1], it[2]))
                    grant = [
                        (t, kind, chan, payload)
                        for t, _src, _idx, kind, chan, payload in now_due
                    ]
                else:
                    grant = []
                active.append(d)
                grants.append(grant)
        for d, grant in zip(active, grants):
            self._send(d, ("run", t_end, grant))
        for src in active:
            msg = self._recv_frame(src)
            if msg[0] != "win":
                self._terminate()
                raise RuntimeError(
                    f"shard {src}: expected 'win', got {msg[0]!r}"
                )
            _, peek, now_, pend_min, payload = msg
            self._peeks[src] = _time(peek)
            self._nows[src] = now_
            self._pend_min[src] = pend_min
            if shm:
                for dest, (count, apply_min) in payload.items():
                    pair = (src, dest)
                    self._written[pair] += count
                    if apply_min < self._wm_min[pair]:
                        self._wm_min[pair] = apply_min
            else:
                for dest, msgs in payload.items():
                    pending = self._pending[dest]
                    for idx, (t, kind, chan, pl) in enumerate(msgs):
                        pending.append((t, src, idx, kind, chan, pl))
        if t_end is None:
            self.now = max(self._nows + [self.now])
        else:
            self.now = t_end
        self.windows += 1

    def run_to(self, target: float) -> None:
        """Conservatively advance the whole fleet to ``target``."""
        if self._no_cuts:
            if self.now < target:
                self._window(target, final=True)
            return
        while self.now < target:
            floor = self._floor()
            if math.isinf(floor):
                t_end = target
            else:
                t_end = min(target, floor + self.lookahead)
            self._window(t_end, final=t_end >= target)

    def drain(self) -> float:
        """Run until fleet-wide quiescence; returns the final time.

        Quiescent = every shard's event queue is empty and no
        cross-shard message is undelivered — the state in which
        ``generated == delivered + lost + backlog`` holds exactly.
        """
        if self._no_cuts:
            self._window(None, final=True)
            return self.now
        for _ in range(_MAX_DRAIN_WINDOWS):
            floor = self._floor()
            if math.isinf(floor):
                return self.now
            self._window(floor + self.lookahead)
        raise RuntimeError(
            f"drain did not quiesce within {_MAX_DRAIN_WINDOWS} windows"
        )

    # ------------------------------------------------------------------
    def collect(self, include_links: bool = False) -> List[dict]:
        """Fetch every shard's summary (see ``ShardNet.summary``)."""
        for shard in range(self.shards):
            self._send(shard, ("collect", include_links))
        return [self._recv(i, "res") for i in range(self.shards)]

    def _close_rings(self) -> None:
        for ring in self._rings.values():
            try:
                ring.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._rings = {}

    def _terminate(self) -> None:
        """Tear the fleet down hard (protocol failure path)."""
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._close_rings()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._close_rings()

    def __enter__(self) -> "ShardedRun":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _time(peek: Optional[float]) -> float:
    return math.inf if peek is None else peek


# ----------------------------------------------------------------------
# Exact merges (DESIGN.md §12: merge invariants)
# ----------------------------------------------------------------------
def merge_latency_parts(parts: List[dict]) -> dict:
    """Chan's parallel combine of per-shard Welford accumulators.

    count/mean/min/max merge exactly; the concatenated reservoirs give
    the same nearest-rank percentile as a monolithic reservoir while
    every shard's sample count stays within its reservoir bound.
    """
    count = 0
    mean = 0.0
    m2 = 0.0
    lo = math.inf
    hi = -math.inf
    samples: List[float] = []
    for part in parts:
        if part["count"] == 0:
            continue
        n_a, n_b = count, part["count"]
        delta = part["mean"] - mean
        count = n_a + n_b
        mean += delta * n_b / count
        m2 += part["m2"] + delta * delta * n_a * n_b / count
        lo = min(lo, part["min"])
        hi = max(hi, part["max"])
        samples.extend(part["samples"])
    return {
        "count": count,
        "mean": mean if count else math.nan,
        "m2": m2,
        "min": lo,
        "max": hi,
        "samples": samples,
    }


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile, matching ``LatencyStats.percentile``."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def merge_conservation(parts: List[dict]) -> dict:
    """Fleet-wide packet accounting (sums merge exactly)."""
    return {
        "generated": sum(p["generated"] for p in parts),
        "delivered": sum(p["delivered"] for p in parts),
        "backlog": sum(p["backlog"] for p in parts),
        "lost": sum(p["lost"] for p in parts),
    }


def merge_window_profiles(parts: List[dict], windows: int) -> dict:
    """Fleet totals of the per-shard window profiles (plus the raw
    per-shard breakdowns, busiest story intact)."""
    per_shard = [p["window_profile"] for p in parts]
    return {
        "windows": windows,
        "compute_ns": sum(p["compute_ns"] for p in per_shard),
        "sync_wait_ns": sum(p["sync_wait_ns"] for p in per_shard),
        "transport_ns": sum(p["transport_ns"] for p in per_shard),
        "wall_ns": sum(p["wall_ns"] for p in per_shard),
        "per_shard": per_shard,
    }


def run_sharded_point(
    m: int,
    n: int,
    scheme: str,
    pattern: str,
    offered: float,
    *,
    cfg: SimConfig,
    hotspot_fraction: float = 0.5,
    warmup_ns: float = 30_000.0,
    measure_ns: float = 120_000.0,
    seed: int = 1,
    drain: bool = False,
    script: Tuple[tuple, ...] = (),
) -> dict:
    """Sharded counterpart of :func:`repro.experiments.runner.run_point`.

    Returns the same record as ``Subnet.run_measurement`` plus the
    exact fleet-wide conservation counters (``generated`` /
    ``delivered`` / ``lost``) and ``shards``.  With ``drain=True``
    generation stops at the measurement end and the fleet runs to
    quiescence first, making ``generated == delivered + lost +
    backlog`` exact.  With ``cfg.profile_windows`` the row carries
    ``window_profile`` (fleet totals + per-shard breakdown).
    """
    with ShardedRun(
        m,
        n,
        scheme,
        cfg,
        seed=seed,
        pattern=pattern,
        hotspot_fraction=hotspot_fraction,
        script=script,
    ) as run:
        run.begin(offered, warmup_ns, measure_ns)
        run.run_to(warmup_ns + measure_ns)
        if drain:
            run.stop_generation()
            run.drain()
        parts = run.collect()
        windows = run.windows
    return _merge_point(
        parts, offered, measure_ns, windows, profile=cfg.profile_windows
    )


def _merge_point(
    parts: List[dict],
    offered: float,
    measure_ns: float,
    windows: int,
    profile: bool = False,
) -> dict:
    num_nodes = sum(len(p["pids"]) for p in parts)
    net_latency = merge_latency_parts([p["net_latency"] for p in parts])
    total_latency = merge_latency_parts([p["latency"] for p in parts])
    bytes_delivered = sum(p["bytes_delivered"] for p in parts)
    per_destination: Dict[int, int] = {}
    for part in parts:
        for pid, pkts in part["per_destination"].items():
            per_destination[pid] = per_destination.get(pid, 0) + pkts
    total = sum(per_destination.values())
    if total:
        sq = sum(x * x for x in per_destination.values())
        fairness = total * total / (num_nodes * sq)
    else:
        fairness = math.nan
    row = {
        "offered": offered,
        "accepted": bytes_delivered / measure_ns / num_nodes,
        "latency_mean": (
            net_latency["mean"] if net_latency["count"] else math.nan
        ),
        "latency_p99": _percentile(net_latency["samples"], 99),
        "latency_total_mean": (
            total_latency["mean"] if total_latency["count"] else math.nan
        ),
        "packets": sum(p["packets_delivered"] for p in parts),
        "backlog": sum(p["backlog"] for p in parts),
        "events": sum(p["events"] for p in parts),
        "fairness": fairness,
        "shards": len(parts),
        "windows": windows,
    }
    row.update(merge_conservation(parts))
    if profile:
        row["window_profile"] = merge_window_profiles(parts, windows)
    return row


def run_sharded_probe(
    m: int,
    n: int,
    scheme: str,
    pattern: str,
    offered: float,
    *,
    cfg: SimConfig,
    hotspot_fraction: float = 0.5,
    warmup_ns: float = 15_000.0,
    measure_ns: float = 60_000.0,
    seed: int = 1,
) -> Tuple[dict, object, List[tuple]]:
    """Sharded counterpart of probe: measure, then rebuild the fabric
    heat report from the shards' link counters.

    Returns ``(row, FabricReport, routing_pressure_rows)``.
    """
    from repro.topology.fattree import FatTree

    with ShardedRun(
        m,
        n,
        scheme,
        cfg,
        seed=seed,
        pattern=pattern,
        hotspot_fraction=hotspot_fraction,
    ) as run:
        run.begin(offered, warmup_ns, measure_ns)
        run.run_to(warmup_ns + measure_ns)
        parts = run.collect(include_links=True)
        elapsed = run.now
        windows = run.windows
    row = _merge_point(
        parts, offered, measure_ns, windows, profile=cfg.profile_windows
    )
    ft = FatTree(m, n)
    report = fabric_report_from_parts(ft, parts, elapsed)
    pressure = routing_pressure_from_parts(ft, cfg, parts, elapsed)
    return row, report, pressure


# ----------------------------------------------------------------------
# Fabric-report reconstruction (probe with --engine sharded)
# ----------------------------------------------------------------------
def _merged_links(parts: List[dict]) -> Tuple[dict, dict, dict]:
    nodes: dict = {}
    switches: dict = {}
    routers: dict = {}
    for part in parts:
        links = part["links"]
        nodes.update(links["nodes"])
        switches.update(links["switches"])
        routers.update(links["routers"])
    return nodes, switches, routers


def fabric_report_from_parts(ft, parts: List[dict], elapsed_ns: float):
    """Rebuild :class:`~repro.ib.instrumentation.FabricReport` from the
    shards' link counters (same layer logic as ``probe_fabric``)."""
    from repro.ib.instrumentation import FabricReport, LinkProbe
    from repro.topology.labels import format_switch

    nodes, switches, _ = _merged_links(parts)
    links: List = []
    for pid in sorted(nodes):
        util, sent, _dropped = nodes[pid]
        links.append(
            LinkProbe(
                layer="injection",
                name=f"node{pid}->leaf",
                utilization=util,
                packets=sent,
            )
        )
    for sw in ft.switches:
        per_phys = switches.get(sw)
        if per_phys is None:
            continue
        _, level = sw
        for phys in sorted(per_phys):
            util, sent, _dropped = per_phys[phys]
            ep = ft.peer(sw, phys - 1)
            if ep.is_node:
                layer = "ejection"
                peer = f"node{ft.node_id(ep.node)}"
            elif ep.switch[1] > level:
                layer = "down"
                peer = format_switch(*ep.switch)
            else:
                layer = "up"
                peer = format_switch(*ep.switch)
            links.append(
                LinkProbe(
                    layer=layer,
                    name=f"{format_switch(*sw)}[{phys}]->{peer}",
                    utilization=util,
                    packets=sent,
                )
            )
    return FabricReport(elapsed_ns=elapsed_ns, links=links)


def loss_rows_from_parts(ft, parts: List[dict]) -> "LossReport":
    """Per-channel drop counts, busiest first (``loss_report`` shape)."""
    from repro.ib.instrumentation import LossReport
    from repro.topology.labels import format_switch

    nodes, switches, _ = _merged_links(parts)
    rows: List[dict] = []
    for pid in sorted(nodes):
        _util, _sent, dropped = nodes[pid]
        if dropped:
            rows.append({"channel": f"node{pid}->leaf", "dropped": dropped})
    for sw in ft.switches:
        per_phys = switches.get(sw)
        if per_phys is None:
            continue
        for phys in sorted(per_phys):
            dropped = per_phys[phys][2]
            if dropped:
                rows.append(
                    {
                        "channel": f"{format_switch(*sw)}[{phys}]",
                        "dropped": dropped,
                    }
                )
    return LossReport(sorted(rows, key=lambda r: -r["dropped"]))


def routing_pressure_from_parts(
    ft, cfg: SimConfig, parts: List[dict], elapsed_ns: float
) -> List[tuple]:
    """Per-switch routing-engine occupancy (``routing_pressure`` shape)."""
    if elapsed_ns <= 0:
        raise RuntimeError("nothing simulated yet (fleet at t=0)")
    _, _, routers = _merged_links(parts)
    out = []
    for sw, (ops, capacity) in routers.items():
        busy = ops * cfg.routing_time_ns
        out.append((sw, busy / (elapsed_ns * capacity)))
    return sorted(out, key=lambda kv: -kv[1])
