"""The dynamic subnet manager: online failure handling in a live run.

:class:`DynamicSubnetManager` wraps a built
:class:`~repro.ib.subnet.Subnet` and a
:class:`~repro.runtime.schedule.FaultSchedule` and drives the full
failure lifecycle *inside* the discrete-event simulation:

1. **Physical event** — at the scheduled time the affected
   :class:`~repro.ib.link.Transmitter` pair is failed (in-flight
   packet lost, buffered packets dropped, stale LFT entries keep
   black-holing traffic into the dead port) or revived (flow control
   restarts from the receiver's actual free slots).
2. **Detection** — the SM learns about the change via the
   :class:`~repro.runtime.detection.TrapDetector`
   (``SimConfig.detection_latency_ns``, optional heartbeat
   quantization).
3. **Re-sweep** — the SM snapshots the fabric's current port state
   (sweep semantics: simultaneous failures coalesce into one repair)
   and computes target tables with the vectorized
   :class:`~repro.core.fault_kernel.FaultRepairKernel` (incremental
   across consecutive sweeps; bit-identical to the offline
   :class:`~repro.core.fault.FaultTolerantTables`, which
   ``use_kernel=False`` swaps back in as the oracle path) — or, when
   every link is back, restores the cached initial sweep tables
   bit-for-bit.
4. **Delta programming** — only switches whose table moved are
   reprogrammed, one ``SimConfig.sm_program_time_ns`` apart, through
   the existing :attr:`SwitchModel.lft` swap path (which re-hoists the
   dense forwarding array into every input unit).  The 0-based
   paper-port → 1-based physical-port conversion is the Subnet
   Manager's own (:meth:`repro.ib.sm.SubnetManager.program_delta`).
5. **Metrics** — each completed re-route appends a
   :class:`ReroutingRecord`; :meth:`DynamicSubnetManager.metrics`
   summarizes time-to-detect, time-to-repair, packets lost, flows
   rerouted and post-repair path-length inflation.

Kernel coherence: the shared
:class:`~repro.ib.artifacts.RoutingArtifacts` cache is never mutated
(other subnets may hold the same instance); instead the manager owns a
*live* :class:`~repro.core.kernel.RouteKernel`, invalidated on every
reprogram and lazily recompiled from the switches' current LFTs by
:meth:`DynamicSubnetManager.live_kernel`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.fault import FaultSet, FaultTolerantTables, LinkId, link_id
from repro.core.fault_kernel import FaultRepairKernel
from repro.core.kernel import RouteKernel
from repro.ib.lft import LinearForwardingTable
from repro.ib.link import Transmitter
from repro.ib.sm import SubnetManager
from repro.ib.subnet import Subnet
from repro.runtime.detection import TrapDetector
from repro.runtime.schedule import FaultEvent, FaultSchedule
from repro.topology.labels import SwitchLabel

__all__ = ["DynamicSubnetManager", "FailoverMetrics", "ReroutingRecord"]

#: 0-based tables, one array per switch (``row[lid - 1] -> port``) —
#: the numpy mirror of the RoutingScheme.build_tables() shape.
Tables = Dict[SwitchLabel, np.ndarray]


@dataclass(frozen=True)
class ReroutingRecord:
    """One completed detection → repair cycle."""

    kind: str  # "down" or "up"
    t_event: float  # physical state change
    t_detected: float  # SM awareness
    t_repaired: float  # last delta-programmed switch done
    faults_known: int  # failed links the re-sweep routed around
    switches_programmed: int
    entries_changed: int
    flows_rerouted: int  # (src, dst) pairs whose selected path moved
    path_inflation: float  # mean repaired/minimal hop ratio, 1.0 if none

    @property
    def time_to_detect(self) -> float:
        return self.t_detected - self.t_event

    @property
    def time_to_repair(self) -> float:
        return self.t_repaired - self.t_event

    def to_dict(self) -> dict:
        """Stable, JSON-ready form (telemetry / ``failover --json``)."""
        return {
            "kind": self.kind,
            "t_event_ns": self.t_event,
            "t_detected_ns": self.t_detected,
            "t_repaired_ns": self.t_repaired,
            "time_to_detect_ns": self.time_to_detect,
            "time_to_repair_ns": self.time_to_repair,
            "faults_known": self.faults_known,
            "switches_programmed": self.switches_programmed,
            "entries_changed": self.entries_changed,
            "flows_rerouted": self.flows_rerouted,
            "path_inflation": self.path_inflation,
        }


@dataclass
class FailoverMetrics:
    """The failover metrics bundle of one simulation."""

    records: List[ReroutingRecord] = field(default_factory=list)
    packets_lost: int = 0

    def as_row(self) -> dict:
        """Flat summary row (report / CSV columns)."""
        downs = [r for r in self.records if r.kind == "down"]
        detect = [r.time_to_detect for r in self.records]
        repair = [r.time_to_repair for r in self.records]
        return {
            "reroutes": len(self.records),
            "time_to_detect": max(detect) if detect else math.nan,
            "time_to_repair": max(repair) if repair else math.nan,
            "packets_lost": self.packets_lost,
            "flows_rerouted": max((r.flows_rerouted for r in downs), default=0),
            "entries_changed": sum(r.entries_changed for r in self.records),
            "path_inflation": max(
                (r.path_inflation for r in downs), default=1.0
            ),
        }

    def to_dict(self) -> dict:
        """Stable, JSON-ready form: the :meth:`as_row` summary (NaN
        rendered as ``None``) plus the per-record detail.

        This is the one shape telemetry, the ``failover --json`` CLI
        and the route-query service all emit — consumers parse one
        schema instead of three hand-formatted variants.
        """
        summary = {
            k: (None if isinstance(v, float) and math.isnan(v) else v)
            for k, v in self.as_row().items()
        }
        return {
            "summary": summary,
            "packets_lost": self.packets_lost,
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self) -> str:
        """:meth:`to_dict` serialized deterministically (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class DynamicSubnetManager:
    """Online SM: failure detection, re-routing and path migration."""

    def __init__(
        self,
        net: Subnet,
        schedule: Optional[FaultSchedule] = None,
        heartbeat_period_ns: Optional[float] = None,
        *,
        use_kernel: bool = True,
    ):
        self.net = net
        self.engine = net.engine
        self.ft = net.ft
        self.scheme = net.scheme
        self.cfg = net.cfg
        self.schedule = schedule if schedule is not None else FaultSchedule(net.ft)
        if self.schedule.ft is not net.ft:
            raise ValueError("schedule was built against a different fabric")
        self.detector = TrapDetector(
            net.engine, net.cfg.detection_latency_ns, heartbeat_period_ns
        )
        self.sm = SubnetManager(net.scheme)
        #: physical state: links currently down.
        self.down_links: Set[LinkId] = set()
        #: the fault set the currently-programmed tables route around.
        self.programmed_faults: frozenset = frozenset()
        self.records: List[ReroutingRecord] = []
        # Re-sweep backend: the vectorized fault-repair kernel (compiled
        # lazily on the first faulty sweep; incremental across sweeps)
        # or the scalar oracle when use_kernel=False.
        self.use_kernel = use_kernel
        self.fault_kernel: Optional[FaultRepairKernel] = None
        # Live tables mirrored in 0-based array form for delta
        # computation; the initial sweep's tables double as the
        # recovery target, so full recovery restores the paper-optimal
        # tables bit-for-bit.
        self._live: Tables = {
            sw: model.lft.as_array() - 1
            for sw, model in net.switches.items()
        }
        self._baseline: Tables = {}
        for sw, table in self._live.items():
            frozen = table.copy()
            frozen.setflags(write=False)
            self._baseline[sw] = frozen
        self._armed = False
        # In-flight delta programming (one sweep at a time; a newer
        # sweep supersedes an unfinished one).
        self._pending_ctx: Optional[dict] = None
        # Live-kernel coherence: bumped on every reprogram.
        self._generation = 0
        self._kernel: Optional[RouteKernel] = None
        self._kernel_generation = -1
        #: Optional observer called as ``on_program(time, sw, table)``
        #: after every live LFT swap (the sharded engine's control
        #: plane records the programming timeline through this).
        self.on_program: Optional[Callable[[float, SwitchLabel, LinearForwardingTable], None]] = None
        #: Optional observer called as ``on_sweep(record)`` after each
        #: detection→repair cycle completes (including zero-delta
        #: sweeps).  Fired from inside the engine's callback, after the
        #: sweep's last table swap — the point where :attr:`generation`
        #: and the live LFTs are mutually consistent, which is what the
        #: route-query service's snapshot publisher
        #: (:class:`repro.service.SnapshotPublisher`) hooks.
        self.on_sweep: Optional[Callable[[ReroutingRecord], None]] = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every fault event on the engine; returns the count.

        Call once, before running the simulation past the first event.
        """
        if self._armed:
            raise RuntimeError("schedule already armed")
        self._armed = True
        events = self.schedule.sorted_events()
        for event in events:
            self.engine.schedule(
                event.time,
                lambda ev=event: self._fire(ev),
                label=event.action,
            )
        return len(events)

    def _fire(self, event: FaultEvent) -> None:
        if event.action == "link_down":
            self._link_down(event.link)
        elif event.action == "link_up":
            self._link_up(event.link)
        elif event.action == "switch_down":
            for link in self._switch_links(event.switch):
                self._link_down(link, notice=False)
            self._notice("down")
        else:  # switch_up
            for link in self._switch_links(event.switch):
                self._link_up(link, notice=False)
            self._notice("up")

    def _switch_links(self, sw: SwitchLabel) -> List[LinkId]:
        return [
            link_id(sw, port, ep.switch, ep.port)
            for port, ep in enumerate(self.ft.ports(sw))
            if ep.is_switch
        ]

    # ------------------------------------------------------------------
    # Physical state changes
    # ------------------------------------------------------------------
    def _directions(
        self, link: LinkId
    ) -> List[Tuple[Transmitter, SwitchLabel, int]]:
        """Both (transmitter, receiving switch, receiving port) of a link."""
        (a, ap), (b, bp) = tuple(link)
        return [
            (self.net.switches[a].tx[ap + 1], b, bp + 1),
            (self.net.switches[b].tx[bp + 1], a, ap + 1),
        ]

    def _link_down(self, link: LinkId, notice: bool = True) -> None:
        if link in self.down_links:
            return
        self.down_links.add(link)
        for tx, _, _ in self._directions(link):
            tx.fail()
        if notice:
            self._notice("down")

    def _link_up(self, link: LinkId, notice: bool = True) -> None:
        if link not in self.down_links:
            return
        self.down_links.discard(link)
        for tx, peer, phys in self._directions(link):
            # Link retraining: credits restart from the peer input
            # unit's actual free slots (packets that arrived before the
            # failure may still be queued there).
            rx = self.net.switches[peer].rx[phys]
            tx.revive([buf.free_slots for buf in rx.buffers])
        if notice:
            self._notice("up")

    # ------------------------------------------------------------------
    # Detection → re-sweep → delta programming
    # ------------------------------------------------------------------
    def _notice(self, kind: str) -> None:
        t_event = self.engine.now
        self.detector.notice(
            lambda: self._resweep(kind, t_event), label=f"detect-{kind}"
        )

    def _resweep(self, kind: str, t_event: float) -> None:
        """SM awareness fired: sweep port state, repair, program deltas."""
        t_detected = self.engine.now
        known = frozenset(self.down_links)  # sweep sees the live fabric
        if known == self.programmed_faults:
            # The last sweep — completed or still programming — already
            # targets exactly this fault set (e.g. a second trap for a
            # coalesced multi-link event): detected, zero delta.
            self._finish_record(
                kind, t_event, t_detected, t_detected, known, {}, {}
            )
            return
        self._abort_pending()  # a newer sweep supersedes an unfinished one
        target = self._target_tables(known)
        # _program_step rebinds (never mutates) live rows, so aliasing
        # the current arrays snapshots them.
        before = dict(self._live)
        deltas = self.sm.program_delta(self._live, target)
        self.programmed_faults = known
        if not deltas:
            self._finish_record(
                kind, t_event, t_detected, t_detected, known, {}, before
            )
            return
        # Program switch-by-switch: one MAD round per modified switch,
        # serially (fabric order is deterministic — program_delta
        # guarantees it).
        ctx = {
            "kind": kind,
            "t_event": t_event,
            "t_detected": t_detected,
            "known": known,
            "before": before,
            "items": list(deltas.items()),
            "programmed": 0,
            "events": [],
        }
        self._pending_ctx = ctx
        step = self.cfg.sm_program_time_ns
        for i, (sw, (lft, _changed)) in enumerate(ctx["items"]):
            ctx["events"].append(
                self.engine.schedule(
                    t_detected + (i + 1) * step,
                    lambda c=ctx, s=sw, table=lft: self._program_step(
                        c, s, table
                    ),
                    label="sm-program",
                )
            )

    def _target_tables(self, known: frozenset) -> Tables:
        """0-based tables the SM wants programmed for a fault set."""
        if not known:
            # Full recovery: restore the initial sweep, bit-for-bit.
            return dict(self._baseline)
        faults = FaultSet(links=known)
        if not self.use_kernel:
            ftt = FaultTolerantTables(self.scheme, faults)
            return {
                sw: np.asarray(entries, dtype=np.int64)
                for sw, entries in ftt.tables.items()
            }
        if self.fault_kernel is None:
            self.fault_kernel = FaultRepairKernel(self.scheme)
        return self.fault_kernel.repair(faults).table_rows

    def _program_step(
        self, ctx: dict, sw: SwitchLabel, table: LinearForwardingTable
    ) -> None:
        """One SubnSet: swap the switch's LFT through the normal path."""
        self.net.switches[sw].lft = table
        self._live[sw] = table.as_array() - 1
        self._generation += 1  # live kernel is stale now
        if self.on_program is not None:
            self.on_program(self.engine.now, sw, table)
        ctx["programmed"] += 1
        if ctx["programmed"] == len(ctx["items"]):
            self._pending_ctx = None
            self._complete_record(ctx)

    def _abort_pending(self) -> None:
        """Cancel an unfinished delta program (superseded by a newer
        sweep); the switches it did reach stay programmed and are
        recorded, the rest will be covered by the new sweep's delta."""
        ctx = self._pending_ctx
        if ctx is None:
            return
        for event in ctx["events"]:
            event.cancel()
        self._pending_ctx = None
        self._complete_record(ctx)

    def _complete_record(self, ctx: dict) -> None:
        deltas = dict(ctx["items"][: ctx["programmed"]])
        self._finish_record(
            ctx["kind"],
            ctx["t_event"],
            ctx["t_detected"],
            self.engine.now,
            ctx["known"],
            deltas,
            ctx["before"],
        )

    def _finish_record(
        self,
        kind: str,
        t_event: float,
        t_detected: float,
        t_repaired: float,
        known: frozenset,
        deltas: Dict[SwitchLabel, Tuple[LinearForwardingTable, int]],
        before: Tables,
    ) -> None:
        flows, inflation = (
            self._migration_stats(before, known) if deltas else (0, 1.0)
        )
        record = ReroutingRecord(
            kind=kind,
            t_event=t_event,
            t_detected=t_detected,
            t_repaired=t_repaired,
            faults_known=len(known),
            switches_programmed=len(deltas),
            entries_changed=sum(c for _, c in deltas.values()),
            flows_rerouted=flows,
            path_inflation=inflation,
        )
        self.records.append(record)
        if self.on_sweep is not None:
            self.on_sweep(record)

    # ------------------------------------------------------------------
    # Migration statistics
    # ------------------------------------------------------------------
    def _walk(
        self, tables: Tables, src_pid: int, dlid: int, max_hops: int
    ) -> Optional[List[Tuple[SwitchLabel, int]]]:
        """(switch, port) sequence of one table walk, None on non-delivery."""
        ft = self.ft
        sw = ft.node_attachment(ft.node_from_pid(src_pid)).switch
        path: List[Tuple[SwitchLabel, int]] = []
        for _ in range(max_hops):
            port = int(tables[sw][dlid - 1])
            path.append((sw, port))
            ep = ft.peer(sw, port)
            if ep.is_node:
                return path
            sw = ep.switch
        return None

    def _migration_stats(
        self, before: Tables, known: frozenset
    ) -> Tuple[int, float]:
        """How many flows moved, and how much longer their paths got.

        A *flow* is a (src, dst) pair; its path is the walk of the
        selected DLID through the tables.  Inflation compares the new
        path length against the fault-free minimal one (the baseline
        tables), averaged over rerouted flows.
        """
        changed = np.zeros(self.scheme.num_lids, dtype=bool)
        for sw, old in before.items():
            live = self._live[sw]
            if live is not old:
                np.logical_or(changed, old != live, out=changed)
        if not changed.any():
            return 0, 1.0
        max_hops = 2 * self.ft.n + 2 * max(1, len(known)) + 2
        num = self.ft.num_nodes
        flows = 0
        ratios: List[float] = []
        for src in range(num):
            for dst in range(num):
                if src == dst:
                    continue
                dlid = self.net.dlid_for(src, dst)
                if not changed[dlid - 1]:
                    continue
                old = self._walk(before, src, dlid, max_hops)
                new = self._walk(self._live, src, dlid, max_hops)
                if old == new:
                    continue
                flows += 1
                if new is not None:
                    base = self._walk(self._baseline, src, dlid, max_hops)
                    ratios.append(len(new) / len(base))
        inflation = sum(ratios) / len(ratios) if ratios else 1.0
        return flows, inflation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_kernel(self) -> RouteKernel:
        """Route kernel compiled from the *current* switch LFTs.

        Invalidated by every reprogram and recompiled lazily, so static
        analyses stay coherent with what the fabric actually forwards
        with.  The shared :mod:`repro.ib.artifacts` cache is left
        untouched — its kernel describes the fault-free tables.

        Note the kernel's hop budget is the fault-free bound
        (``2n + 2``); on deep trees a repaired route that detours past
        it shows up as undelivered rather than raising.
        """
        if self._kernel is None or self._kernel_generation != self._generation:
            lfts = {sw: model.lft for sw, model in self.net.switches.items()}
            self._kernel = RouteKernel.from_lfts(self.scheme, lfts)
            self._kernel_generation = self._generation
        return self._kernel

    @property
    def generation(self) -> int:
        """The live forwarding-state generation counter (read-only).

        Consistency contract:

        * starts at 0 (the initial SM sweep) and is bumped **once per
          reprogrammed switch**, so it increases monotonically and
          never repeats;
        * two reads returning the same value bracket a window in which
          no live LFT changed — any table, kernel or snapshot derived
          in between describes exactly what the fabric forwards with;
        * mid-sweep values are observable (delta programming lands
          switch-by-switch); a *sweep-consistent* generation is one
          read inside :attr:`on_sweep`, which fires after the sweep's
          last swap;
        * consumers keying caches or snapshots by this value
          (:meth:`live_kernel`, :class:`repro.service.SnapshotStore`)
          treat an equal generation as "nothing changed" — publishing
          the same generation twice is a no-op by contract.
        """
        return self._generation

    def packets_lost(self) -> int:
        """Packets dropped on dead links so far, fabric-wide."""
        total = sum(
            tx.packets_dropped
            for model in self.net.switches.values()
            for tx in model.tx.values()
        )
        total += sum(node.tx.packets_dropped for node in self.net.endnodes)
        return total

    def metrics(self) -> FailoverMetrics:
        """The metrics bundle accumulated so far."""
        return FailoverMetrics(
            records=list(self.records), packets_lost=self.packets_lost()
        )

    def live_lfts(self) -> Dict[SwitchLabel, LinearForwardingTable]:
        """The LFT instances the switches currently forward with."""
        return {sw: model.lft for sw, model in self.net.switches.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicSubnetManager(down={len(self.down_links)}, "
            f"reroutes={len(self.records)}, generation={self._generation})"
        )
