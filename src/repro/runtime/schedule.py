"""Fault timelines: which links/switches go down (and come back) when.

A :class:`FaultSchedule` is the declarative input of the dynamic
subnet manager: an ordered list of :class:`FaultEvent` entries, each
downing or recovering one switch-to-switch link or one whole (non-leaf)
switch at an absolute simulated time.  The schedule is built against a
:class:`~repro.topology.fattree.FatTree` so targets are validated at
construction, not at fire time:

* node-to-leaf links are rejected (losing one disconnects the node
  outright — same rule as :class:`repro.core.fault.FaultSet`);
* leaf switches cannot be downed (their node links would go with them).

Times use the engine's clock (nanoseconds).  Events at the same time
fire in insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.fault import LinkId, link_id
from repro.topology.fattree import FatTree
from repro.topology.labels import SwitchLabel, format_switch

__all__ = ["FaultEvent", "FaultSchedule"]

#: Valid event actions.
ACTIONS = ("link_down", "link_up", "switch_down", "switch_up")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled state change of the physical fabric."""

    time: float
    action: str
    link: Optional[LinkId] = None
    switch: Optional[SwitchLabel] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        is_link = self.action.startswith("link")
        if is_link and (self.link is None or self.switch is not None):
            raise ValueError(f"{self.action} events carry a link, not a switch")
        if not is_link and (self.switch is None or self.link is not None):
            raise ValueError(f"{self.action} events carry a switch, not a link")

    def describe(self) -> str:
        if self.link is not None:
            (a, ap), (b, bp) = sorted(self.link, key=str)
            what = f"{format_switch(*a)}[{ap}] <-> {format_switch(*b)}[{bp}]"
        else:
            what = format_switch(*self.switch)
        return f"t={self.time:.0f}ns {self.action} {what}"


class FaultSchedule:
    """Ordered fault timeline for one fat-tree fabric."""

    def __init__(self, ft: FatTree):
        self.ft = ft
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def _resolve_link(self, sw: SwitchLabel, port: int) -> LinkId:
        ep = self.ft.peer(sw, port)
        if not ep.is_switch:
            raise ValueError(
                f"{format_switch(*sw)} port {port} attaches a node; node "
                "links cannot be failed (the node would be unreachable)"
            )
        return link_id(sw, port, ep.switch, ep.port)

    def _check_switch(self, sw: SwitchLabel) -> SwitchLabel:
        if sw not in self.ft._switch_index:
            raise ValueError(f"unknown switch {sw!r}")
        if sw[1] == self.ft.n - 1:
            raise ValueError(
                f"{format_switch(*sw)} is a leaf switch; downing it would "
                "take its node links, which cannot be routed around"
            )
        return sw

    def _add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        return self

    # ------------------------------------------------------------------
    # Builders (chainable)
    # ------------------------------------------------------------------
    def link_down(self, time: float, sw: SwitchLabel, port: int) -> "FaultSchedule":
        """Fail the link out of ``(sw, 0-based port)`` at ``time``."""
        return self._add(
            FaultEvent(time, "link_down", link=self._resolve_link(sw, port))
        )

    def link_up(self, time: float, sw: SwitchLabel, port: int) -> "FaultSchedule":
        """Recover the link out of ``(sw, 0-based port)`` at ``time``."""
        return self._add(
            FaultEvent(time, "link_up", link=self._resolve_link(sw, port))
        )

    def switch_down(self, time: float, sw: SwitchLabel) -> "FaultSchedule":
        """Fail every link of a non-leaf switch at ``time``."""
        return self._add(
            FaultEvent(time, "switch_down", switch=self._check_switch(sw))
        )

    def switch_up(self, time: float, sw: SwitchLabel) -> "FaultSchedule":
        """Recover every link of a non-leaf switch at ``time``."""
        return self._add(
            FaultEvent(time, "switch_up", switch=self._check_switch(sw))
        )

    def fail_and_recover(
        self, sw: SwitchLabel, port: int, t_down: float, t_up: float
    ) -> "FaultSchedule":
        """Convenience: one link-down/link-up pair."""
        if t_up <= t_down:
            raise ValueError(f"recovery at t={t_up} must follow failure at t={t_down}")
        return self.link_down(t_down, sw, port).link_up(t_up, sw, port)

    # ------------------------------------------------------------------
    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (time, then insertion order)."""
        return [
            event
            for _, _, event in sorted(
                (event.time, i, event) for i, event in enumerate(self.events)
            )
        ]

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.sorted_events())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self.events)} events)"
