"""When does the Subnet Manager *learn* that a port changed state?

Real subnets have two mechanisms:

* **traps** — the switch adjacent to the failed link sends an
  unsolicited SMP trap to the SM; the SM hears about the failure one
  trap-propagation latency after it happened
  (``SimConfig.detection_latency_ns``);
* **heartbeats** — the SM polls port state on a fixed sweep period;
  a change is noticed at the *next* sweep tick after it happens (plus
  the same propagation latency for the response MAD).

:class:`TrapDetector` models both: with no heartbeat period it is a
pure trap channel (detection at ``t + latency``); with a period it
quantizes awareness to the sweep grid (detection at the first tick
strictly after ``t``, plus latency).  A latency of 0 with no heartbeat
is the oracle SM — it reacts the instant the link state changes, which
is the configuration whose repaired tables must be bit-identical to
:class:`repro.core.fault.FaultTolerantTables`' offline repair.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.engine import Engine

__all__ = ["TrapDetector"]


class TrapDetector:
    """Schedules SM awareness of port-state changes."""

    def __init__(
        self,
        engine: Engine,
        latency_ns: float,
        heartbeat_period_ns: Optional[float] = None,
    ):
        if latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ns}")
        if heartbeat_period_ns is not None and heartbeat_period_ns <= 0:
            raise ValueError(
                f"heartbeat period must be positive, got {heartbeat_period_ns}"
            )
        self.engine = engine
        self.latency_ns = latency_ns
        self.heartbeat_period_ns = heartbeat_period_ns
        self.traps_delivered = 0

    def detection_time(self, t_event: float) -> float:
        """When the SM notices a state change that happened at ``t_event``."""
        if self.heartbeat_period_ns is None:
            return t_event + self.latency_ns
        period = self.heartbeat_period_ns
        next_tick = (math.floor(t_event / period) + 1) * period
        return next_tick + self.latency_ns

    def notice(self, callback: Callable[[], None], label: str = "trap") -> float:
        """Deliver ``callback`` at the detection time for a change
        happening *now*; returns that time."""
        t = self.detection_time(self.engine.now)
        self.engine.schedule(t, self._wrap(callback), label=label)
        return t

    def _wrap(self, callback: Callable[[], None]) -> Callable[[], None]:
        def fire() -> None:
            self.traps_delivered += 1
            callback()

        return fire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hb = self.heartbeat_period_ns
        mode = f"heartbeat={hb}ns" if hb else "trap"
        return f"TrapDetector({mode}, latency={self.latency_ns}ns)"
