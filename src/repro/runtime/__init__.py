"""Dynamic subnet management: failure injection *during* simulation.

The paper fixes routing at initialization "unless a subnet
reconfiguration or … the subnet manager re-assigns forwarding table for
each switch".  :mod:`repro.core.fault` models that re-assignment
offline; this package runs it *online*, inside a live simulation:

* :mod:`repro.runtime.schedule` — declarative fault timelines (link
  and switch down/up events at simulated times);
* :mod:`repro.runtime.detection` — the trap/heartbeat model for when
  the Subnet Manager *learns* about a port-state change
  (``SimConfig.detection_latency_ns``);
* :mod:`repro.runtime.manager` — the
  :class:`~repro.runtime.manager.DynamicSubnetManager`: applies
  physical failures to the live subnet, re-sweeps on detection,
  reuses :class:`~repro.core.fault.FaultTolerantTables` to compute
  repaired tables, programs LFT *deltas* switch-by-switch through the
  existing LFT-swap path, and collects the failover metrics bundle
  (time-to-detect, time-to-repair, packets lost, flows rerouted,
  path-length inflation).
"""

from repro.runtime.detection import TrapDetector
from repro.runtime.manager import (
    DynamicSubnetManager,
    FailoverMetrics,
    ReroutingRecord,
)
from repro.runtime.schedule import FaultEvent, FaultSchedule

__all__ = [
    "DynamicSubnetManager",
    "FailoverMetrics",
    "FaultEvent",
    "FaultSchedule",
    "ReroutingRecord",
    "TrapDetector",
]
