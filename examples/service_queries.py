"""Route-query service quickstart: every query type over the wire.

Starts ``python -m repro serve`` as a subprocess (storm on, so tables
are being repaired while we query), connects with the blocking client,
exercises each op — ping, info, dlid, path, flows, load, top-loads,
telemetry, a telemetry subscription — and shuts the server down
cleanly.  This doubles as the CI smoke script for the service.

Run from the repo root::

    PYTHONPATH=src python examples/service_queries.py
"""

from __future__ import annotations

import subprocess
import sys

from repro.service import ServiceClient

PORT = 38917  # fixed so the subprocess and client agree


def main() -> int:
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "4",
            "2",
            "--port",
            str(PORT),
            "--telemetry-interval",
            "0.2",
            "--pace",
            "0.01",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline().strip()
        print(f"server: {banner}")
        assert banner.endswith(f":{PORT}"), banner

        with ServiceClient("127.0.0.1", PORT) as c:
            print(f"ping      -> generation {c.ping()['generation']}")

            info = c.info()
            print(
                f"info      -> FT({info['m']},{info['n']}) "
                f"[{info['scheme']}], {info['num_nodes']} nodes, "
                f"{info['num_lids']} LIDs"
            )

            resp = c.dlid(0, 5)
            print(
                f"dlid      -> node 0 reaches node 5 via DLID "
                f"{resp['dlid']} (generation {resp['generation']})"
            )

            path = c.path(0, 5)
            print(
                f"path      -> {' -> '.join(path['switches'])} "
                f"(ports {path['ports']})"
            )

            flows = c.flows("0", 0, 0)
            print(
                f"flows     -> {flows['count']} flow classes cross "
                f"SW<0, 0> port 0"
            )

            load = c.load("0", 0, 0)
            print(f"load      -> SW<0, 0> port 0 carries {load['load']}")

            top = c.top_loads(3)
            hottest = top["top"][0]
            print(
                f"top-loads -> hottest channel {hottest['switch']} "
                f"port {hottest['port']} at {hottest['load']}"
            )

            frame = c.telemetry()
            print(
                f"telemetry -> generation "
                f"{frame['snapshots']['generation']}, "
                f"{frame['snapshots']['publishes']} snapshots published, "
                f"{frame['repairs']['reroutes']} reroutes"
            )

        # Telemetry subscription on a dedicated connection.
        with ServiceClient("127.0.0.1", PORT) as sub:
            sub.subscribe()
            for i, frame in enumerate(sub.frames(3)):
                print(
                    f"frame {i}   -> generation "
                    f"{frame['snapshots']['generation']}, snapshot age "
                    f"{frame['snapshots']['snapshot_age_s']}s"
                )

        with ServiceClient("127.0.0.1", PORT) as c:
            c.shutdown()
        code = server.wait(timeout=30)
        print(f"server exited cleanly with code {code}")
        return code
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main())
