#!/usr/bin/env python3
"""Quickstart: build a fat-tree InfiniBand subnet, route, simulate.

Walks through the library's three layers in ~a minute of runtime:

1. construct an m-port n-tree and inspect the paper's definitions;
2. build the MLID routing scheme, trace a route, verify all routes;
3. simulate uniform traffic and read the paper's two metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    FatTree,
    MlidScheme,
    SimConfig,
    UniformPattern,
    build_subnet,
    trace_path,
    verify_scheme,
)
from repro.topology.labels import format_node, format_switch


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Topology: the paper's running example, the 4-port 3-tree.
    # ------------------------------------------------------------------
    ft = FatTree(4, 3)
    print(f"FT(4, 3): {ft.num_nodes} nodes, {ft.num_switches} switches, "
          f"height {ft.height}")
    node = (1, 0, 1)
    ref = ft.node_attachment(node)
    print(f"{format_node(node)} hangs off {format_switch(*ref.switch)} "
          f"port {ref.port}")

    # ------------------------------------------------------------------
    # 2. Routing: MLID addressing, path selection, forwarding.
    # ------------------------------------------------------------------
    scheme = MlidScheme(ft)
    print(f"\nMLID: LMC={scheme.lmc}, {scheme.lids_per_node} LIDs per node")
    src, dst = (0, 0, 0), (3, 0, 0)
    print(f"LIDset({format_node(dst)}) = {list(scheme.lid_set(dst))}")
    trace = trace_path(scheme, src, dst)
    hops = " -> ".join(format_switch(*sw) for sw in trace.switches)
    print(f"route {format_node(src)} -> {format_node(dst)} "
          f"(DLID {trace.dlid}): {hops}")

    checked = verify_scheme(scheme)
    print(f"verified {checked} routes: delivery, minimality, up*/down*")

    # ------------------------------------------------------------------
    # 3. Simulation: uniform traffic on an 8-port 2-tree.
    # ------------------------------------------------------------------
    print("\nsimulating 8-port 2-tree, uniform traffic, 2 VLs ...")
    net = build_subnet(m=8, n=2, scheme="mlid", cfg=SimConfig(num_vls=2))
    net.attach_pattern(UniformPattern(net.num_nodes))
    result = net.run_measurement(
        offered_load=0.3,  # bytes/ns per node
        warmup_ns=20_000,
        measure_ns=80_000,
    )
    print(f"offered    : {result['offered']:.3f} bytes/ns/node")
    print(f"accepted   : {result['accepted']:.3f} bytes/ns/node")
    print(f"latency    : {result['latency_mean']:.0f} ns mean, "
          f"{result['latency_p99']:.0f} ns p99")
    print(f"packets    : {result['packets']}")


if __name__ == "__main__":
    main()
