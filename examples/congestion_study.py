#!/usr/bin/env python3
"""Hot-spot congestion study: why one LID per node is not enough.

Reproduces the paper's motivating scenario (Figures 7-9) end to end:

1. *Static view* — trace all-to-one traffic under SLID and MLID and
   show where flows converge (turning switches, hottest channel);
2. *Dynamic view* — simulate the 50% centric workload and measure what
   the convergence costs in delivered bandwidth;
3. *Link heat map* — print per-link utilization by fabric layer so the
   congestion tree is visible.

Run:  python examples/congestion_study.py
"""

import numpy as np

from repro import CentricPattern, SimConfig, build_subnet
from repro.core.scheme import get_scheme
from repro.core.verification import lca_usage, link_loads_all_to_one
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree
from repro.topology.labels import format_node, format_switch

M, N = 8, 2
HOT = (0, 0)


def static_view() -> None:
    ft = FatTree(M, N)
    print(f"=== static: every node sends one packet to {format_node(HOT)} ===")
    for name in ("slid", "mlid"):
        scheme = get_scheme(name, ft)
        usage = lca_usage(scheme, HOT)
        loads = link_loads_all_to_one(scheme, HOT)
        terminal = ((HOT[:N - 1], N - 1), HOT[N - 1])
        loads.pop(terminal, None)
        hottest_link, hottest = max(loads.items(), key=lambda kv: kv[1])
        sw, port = hottest_link
        print(f"{name.upper():5s}: {len(usage)} turning switches, "
              f"hottest internal channel {format_switch(*sw)}[{port}] "
              f"carries {hottest}/{ft.num_nodes - 1} flows")


def dynamic_view() -> None:
    print(f"\n=== dynamic: 50% centric traffic on FT({M},{N}), 1 VL ===")
    rows = []
    nets = {}
    for name in ("slid", "mlid"):
        net = build_subnet(M, N, name, SimConfig(num_vls=1), seed=1)
        net.attach_pattern(
            CentricPattern(net.num_nodes, hot_pid=0, fraction=0.5)
        )
        res = net.run_measurement(0.8, warmup_ns=20_000, measure_ns=80_000)
        nets[name] = net
        rows.append(
            {
                "scheme": name,
                "offered": 0.8,
                "accepted": res["accepted"],
                "latency_ns": res["latency_mean"],
                "hot node pkts": net.throughput.per_destination.get(0, 0),
            }
        )
    print(render_table(rows))
    gain = rows[1]["accepted"] / rows[0]["accepted"]
    print(f"MLID delivers {gain:.2f}x SLID's aggregate bandwidth here\n")

    print("=== link heat map (mean/max utilization per layer) ===")
    for name, net in nets.items():
        elapsed = net.engine.now
        layers = {"node->leaf": [], "up": [], "down": [], "leaf->node": []}
        for nd in net.endnodes:
            layers["node->leaf"].append(nd.tx.utilization(elapsed))
        for sw, model in net.switches.items():
            _, lvl = sw
            for phys, tx in model.tx.items():
                ep = net.ft.peer(sw, phys - 1)
                if ep.is_node:
                    layers["leaf->node"].append(tx.utilization(elapsed))
                elif ep.switch[1] > lvl:
                    layers["down"].append(tx.utilization(elapsed))
                else:
                    layers["up"].append(tx.utilization(elapsed))
        print(f"{name.upper()}:")
        for layer, us in layers.items():
            u = np.array(us)
            print(f"  {layer:11s} mean {u.mean():5.1%}  max {u.max():5.1%}")


def main() -> None:
    static_view()
    dynamic_view()


if __name__ == "__main__":
    main()
