#!/usr/bin/env python3
"""Cluster provisioning study: size a fat-tree fabric for a node budget.

The scenario the paper's introduction motivates: you are building a
cluster and must pick the interconnect.  Given a target node count and
the switch silicon available (port count m), this example

1. enumerates the FT(m, n) configurations that reach the budget,
2. compares their hardware cost (switches, links) and path diversity,
3. simulates the two routing schemes on the best candidate to check
   delivered bandwidth under the expected workload mix.

Run:  python examples/cluster_provisioning.py [node_budget]
"""

import sys

from repro import SimConfig, UniformPattern, build_subnet
from repro.core.addressing import MlidAddressing
from repro.experiments.report import render_table
from repro.topology import groups


def candidate_fabrics(node_budget: int):
    """All FT(m, n) with at least node_budget nodes, small ones first."""
    out = []
    for m in (4, 8, 16, 32):
        for n in (2, 3, 4):
            try:
                nodes = groups.num_nodes(m, n)
                lmc = MlidAddressing(m, n).lmc
            except ValueError:
                continue  # exceeds IBA LMC/LID limits
            if nodes >= node_budget:
                switches = groups.num_switches(m, n)
                out.append(
                    {
                        "m": m,
                        "n": n,
                        "nodes": nodes,
                        "switches": switches,
                        "links": switches * m // 2 + nodes // 2,
                        "paths (max)": (m // 2) ** (n - 1),
                        "LMC": lmc,
                    }
                )
                break  # deeper trees only add unneeded capacity
    return sorted(out, key=lambda r: (r["switches"], r["nodes"]))


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    fabrics = candidate_fabrics(budget)
    if not fabrics:
        raise SystemExit(f"no FT(m, n) within IBA limits reaches {budget} nodes")
    print(render_table(fabrics, title=f"fabrics reaching {budget} nodes"))

    best = fabrics[0]
    m, n = best["m"], best["n"]
    print(f"candidate: FT({m}, {n}) — simulating delivered bandwidth\n")

    rows = []
    for scheme in ("slid", "mlid"):
        for load in (0.1, 0.3, 0.6):
            net = build_subnet(m, n, scheme, SimConfig(num_vls=2), seed=1)
            net.attach_pattern(UniformPattern(net.num_nodes))
            res = net.run_measurement(load, warmup_ns=15_000, measure_ns=50_000)
            rows.append(
                {
                    "scheme": scheme,
                    "offered": load,
                    "accepted": res["accepted"],
                    "latency_ns": res["latency_mean"],
                }
            )
    print(render_table(rows, title=f"FT({m},{n}), uniform traffic, 2 VLs"))

    slid_max = max(r["accepted"] for r in rows if r["scheme"] == "slid")
    mlid_max = max(r["accepted"] for r in rows if r["scheme"] == "mlid")
    print(f"peak delivered: SLID {slid_max:.3f}, MLID {mlid_max:.3f} "
          "bytes/ns/node -> provision with "
          f"{'MLID' if mlid_max >= slid_max else 'SLID'}")


if __name__ == "__main__":
    main()
