#!/usr/bin/env python3
"""Extending the library: a custom traffic pattern and routing scheme.

Shows the two extension points a downstream user needs:

1. a new :class:`TrafficPattern` — here, a *neighbour-exchange*
   pattern where node i alternates between PIDs i-1 and i+1 (a common
   stencil-communication abstraction);
2. a new :class:`RoutingScheme` — here, a *random-root* variant that
   keeps MLID's multiple LIDs but picks the path offset by hashing the
   (src, dst) pair instead of by source rank, then compares all three
   schemes under both workloads.

Run:  python examples/custom_pattern.py
"""

import numpy as np

from repro import CentricPattern, SimConfig, build_subnet, verify_scheme
from repro.core.forwarding import MlidScheme
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree
from repro.traffic.patterns import TrafficPattern


class NeighbourExchangePattern(TrafficPattern):
    """Node i sends alternately to (i-1) mod N and (i+1) mod N."""

    def __init__(self, num_nodes: int):
        super().__init__(num_nodes)
        self._toggle = {}

    def chooser(self, pid: int):
        self._check_pid(pid)
        n = self.num_nodes
        left, right = (pid - 1) % n, (pid + 1) % n

        def choose(_rng: np.random.Generator) -> int:
            flip = self._toggle.get(pid, False)
            self._toggle[pid] = not flip
            return left if flip else right

        return choose


class HashedOffsetScheme(MlidScheme):
    """MLID with a pair-hashed path offset.

    Keeps the addressing and forwarding (Equations 1-2) untouched —
    only path *selection* changes, which is exactly the degree of
    freedom the LID set gives a host stack.
    """

    name = "mlid-hash"

    def dlid(self, src, dst):
        base = self.base_lid(dst)
        alpha = 0
        for a, b in zip(src, dst):
            if a != b:
                break
            alpha += 1
        paths = self.ft.half ** (self.ft.n - 1 - alpha) if alpha < self.ft.n - 1 else 1
        h = hash((src, dst)) & 0x7FFFFFFF
        return base + h % paths


def main() -> None:
    m, n = 8, 2
    ft = FatTree(m, n)
    hashed = HashedOffsetScheme(ft)
    print(f"verifying {hashed.name} ...", end=" ")
    print(f"{verify_scheme(hashed)} routes OK")

    workloads = {
        "neighbour": lambda nn: NeighbourExchangePattern(nn),
        "centric50": lambda nn: CentricPattern(nn, hot_pid=0, fraction=0.5),
    }
    rows = []
    for wname, factory in workloads.items():
        for scheme in ("slid", "mlid", HashedOffsetScheme):
            if isinstance(scheme, str):
                sname, sarg = scheme, scheme
            else:
                sarg = scheme(FatTree(m, n))
                sname = sarg.name
            net = build_subnet(m, n, sarg, SimConfig(num_vls=1), seed=1)
            net.attach_pattern(factory(net.num_nodes))
            res = net.run_measurement(0.6, warmup_ns=15_000, measure_ns=60_000)
            rows.append(
                {
                    "workload": wname,
                    "scheme": sname,
                    "accepted": res["accepted"],
                    "latency_ns": res["latency_mean"],
                }
            )
    print()
    print(render_table(rows, title=f"FT({m},{n}), offered 0.6 bytes/ns/node"))
    print("note: neighbour exchange is mostly intra-leaf, so schemes tie;")
    print("      the hot-spot splits them, and hashed offsets track MLID.")


if __name__ == "__main__":
    main()
