#!/usr/bin/env python3
"""Operating a degraded fabric: link failures and SM reconfiguration.

Ops scenario: a cable between a root and a leaf switch dies on a
running cluster.  The subnet manager sweeps, recomputes the affected
forwarding-table entries (routing *around* the dead link while keeping
every untouched route on its original minimal path), and reprograms the
switches.  This example shows:

1. which routes the failure breaks and where they are re-routed;
2. proof the repaired tables still deliver every (src, dst, LID) route;
3. the performance cost, measured before/after on the simulator;
4. what happens as more links die — until the fabric disconnects.

Run:  python examples/fault_tolerance.py
"""

from repro import SimConfig, UniformPattern, build_subnet
from repro.core.fault import DisconnectedError, FaultSet, FaultTolerantTables
from repro.core.scheme import get_scheme
from repro.core.verification import trace_path
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree
from repro.topology.labels import format_node, format_switch

M, N = 8, 2


def show_reroute() -> None:
    ft = FatTree(M, N)
    scheme = get_scheme("mlid", ft)
    root = ft.switches_at_level(0)[0]
    dead = (root, 0)  # root <0>'s link down to leaf <0>
    peer = ft.peer(*dead)
    print(f"failing link {format_switch(*root)}[0] <-> "
          f"{format_switch(*peer.switch)}[{peer.port}]\n")

    src, dst = (4, 0), (0, 0)  # a pair whose MLID route used that link
    before = trace_path(scheme, src, dst)
    print(f"before: {format_node(src)} -> {format_node(dst)} via "
          + " -> ".join(format_switch(*sw) for sw in before.switches))

    ftt = FaultTolerantTables(scheme, FaultSet.from_pairs(ft, [dead]))
    after = ftt.trace(src, dst)
    print(f"after : {format_node(src)} -> {format_node(dst)} via "
          + " -> ".join(format_switch(*sw) for sw in after))
    print(f"repaired {ftt.repaired_entries} forwarding-table entries\n")

    # Exhaustive check: every (src, dst, LID) route still delivers.
    routes = 0
    for s in ft.nodes:
        for d in ft.nodes:
            if s == d:
                continue
            for lid in scheme.lid_set(d):
                ftt.trace(s, d, dlid=lid)
                routes += 1
    print(f"verified {routes} repaired routes deliver correctly\n")


def measure_degradation() -> None:
    rows = []
    for failures in (0, 1, 2, 4, 8):
        ft = FatTree(M, N)
        scheme = get_scheme("mlid", ft)
        try:
            ftt = FaultTolerantTables(
                scheme, FaultSet.random(ft, failures, seed=9)
            )
        except DisconnectedError as exc:
            rows.append({"failed links": failures, "status": f"DISCONNECTED ({exc})"})
            continue
        net = build_subnet(M, N, ftt.as_scheme(), SimConfig(num_vls=1), seed=1)
        net.attach_pattern(UniformPattern(net.num_nodes))
        res = net.run_measurement(0.3, warmup_ns=15_000, measure_ns=60_000)
        rows.append(
            {
                "failed links": failures,
                "status": "ok",
                "repaired entries": ftt.repaired_entries,
                "accepted": res["accepted"],
                "latency_ns": res["latency_mean"],
            }
        )
    print(render_table(rows, title="uniform traffic @ 0.3 on a degraded FT(8,2)"))


def main() -> None:
    show_reroute()
    measure_degradation()


if __name__ == "__main__":
    main()
