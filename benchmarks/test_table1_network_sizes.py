"""T1 — the paper's Table 1: simulated network sizes.

Static (no simulation): constructs each evaluated FT(m, n), validates
it structurally, and reports the size/addressing columns.
"""

from repro.core.addressing import MlidAddressing
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree
from repro.topology.validate import validate_fattree

CONFIGS = [(4, 2), (8, 2), (16, 2), (32, 2), (4, 3), (8, 3)]


def build_rows():
    rows = []
    for m, n in CONFIGS:
        ft = FatTree(m, n)
        validate_fattree(ft)
        addr = MlidAddressing(m, n)
        rows.append(
            {
                "m-port": m,
                "n-tree": n,
                "nodes": ft.num_nodes,
                "switches": ft.num_switches,
                "LMC": addr.lmc,
                "LIDs/node": addr.lids_per_node,
                "total LIDs": addr.num_lids,
            }
        )
    return rows


def test_table1(benchmark, save_result):
    rows = benchmark(build_rows)
    # Paper formulas: 2(m/2)^n nodes, (2n-1)(m/2)^(n-1) switches.
    assert [r["nodes"] for r in rows] == [8, 32, 128, 512, 16, 128]
    assert [r["switches"] for r in rows] == [6, 12, 24, 48, 20, 80]
    save_result(
        "table1", render_table(rows, title="Table 1: simulated network sizes")
    )
