"""A14 — statistical robustness of the headline comparison.

Runs the fig13/fig17 mid-load points over five seeds and reports
mean ± standard deviation.  The reproduction's claims survive only if
the scheme gaps exceed seed noise; the assertions encode that.
"""

import statistics

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

SEEDS = (1, 2, 3, 4, 5)


def sweep():
    rows = []
    for pattern, load in (("uniform", 0.6), ("centric", 0.8)):
        for scheme in ("slid", "mlid"):
            accs = []
            for seed in SEEDS:
                res = run_point(
                    8, 2, scheme, pattern, load,
                    cfg=SimConfig(num_vls=1),
                    warmup_ns=20_000, measure_ns=60_000, seed=seed,
                )
                accs.append(res["accepted"])
            rows.append(
                {
                    "pattern": pattern,
                    "scheme": scheme,
                    "seeds": len(SEEDS),
                    "mean": statistics.mean(accs),
                    "stdev": statistics.stdev(accs),
                    "cv%": 100 * statistics.stdev(accs) / statistics.mean(accs),
                }
            )
    return rows


def test_statistical_robustness(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a14_statistics",
        render_table(rows, title="A14: accepted traffic over 5 seeds, FT(8,2)"),
    )
    by = {(r["pattern"], r["scheme"]): r for r in rows}
    # Seed noise is small at saturation...
    for row in rows:
        assert row["cv%"] < 5.0
    # ...and the centric MLID-over-SLID gap exceeds two joint stdevs.
    slid, mlid = by[("centric", "slid")], by[("centric", "mlid")]
    gap = mlid["mean"] - slid["mean"]
    noise = (slid["stdev"] ** 2 + mlid["stdev"] ** 2) ** 0.5
    assert gap > 2 * noise
