"""A2 — virtual-lane sensitivity under centric traffic.

Extends the paper's 1/2/4-VL comparison to 8 VLs at a fixed offered
load: accepted traffic for each (scheme, VL count).  Reproduces
Observation 3's VL interaction: VLs recover most of SLID's hot-spot
loss because the hot flow stops head-of-line blocking other flows at
every shared buffer.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

LOAD = 0.6
VLS = (1, 2, 4, 8)


def sweep():
    rows = []
    for vls in VLS:
        for scheme in ("slid", "mlid"):
            res = run_point(
                8, 2, scheme, "centric", LOAD,
                cfg=SimConfig(num_vls=vls),
                warmup_ns=20_000, measure_ns=80_000, seed=1,
            )
            rows.append(
                {
                    "vls": vls,
                    "scheme": scheme,
                    "offered": LOAD,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                }
            )
    return rows


def test_vl_sensitivity(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a2_virtual_lanes",
        render_table(
            rows, title=f"A2: VL sensitivity, 8-port 2-tree centric @ {LOAD}"
        ),
    )
    acc = {(r["vls"], r["scheme"]): r["accepted"] for r in rows}
    # More VLs strictly help both schemes on hot-spot traffic.
    for scheme in ("slid", "mlid"):
        assert acc[(4, scheme)] > acc[(1, scheme)]
