"""A5 — engine microbenchmarks: events/second of the DES core and
packets/second of the full subnet simulator, for both scheduler
backends (heap oracle vs. timing wheel).

The headline benchmark (``test_backend_speedup_ft8_3``) measures the
wheel backend's speedup on the paper's FT(8,3) uniform-traffic
workload and persists the evidence to
``benchmarks/results/BENCH_engine.json`` (quick grids go to
``results/quick/`` like every other benchmark here).

Measurement protocol
--------------------
Both backends simulate the *same* workload — bit-identical event
sequence, verified in-run — so the packets/sec ratio equals the
wall-time ratio.  Wall time is taken as the **minimum over N
interleaved repetitions** (heap, wheel, heap, wheel, ...):

* minimum, because timing noise on a shared host is strictly additive
  (the min is the standard ``timeit`` statistic for CPU-bound code);
* interleaved, so slow drift in machine load biases both backends
  equally instead of whichever ran last.

Set ``REPRO_BENCH_FULL=1`` for the committed-evidence protocol
(300 us simulated window, 7 repetitions); the default quick grid
(60 us, 3 repetitions) keeps CI smoke runs short.
"""

import gc
import os
import time

import pytest

from repro.ib.config import SimConfig
from repro.ib.subnet import build_subnet
from repro.sim.wheel import make_engine
from repro.traffic import UniformPattern
from repro.traffic.patterns import make_pattern

from conftest import write_bench_report


#: The locked FT(8,3) benchmark configuration (see DESIGN.md §9).
BENCH_CONFIG = dict(
    m=8,
    n=3,
    scheme="mlid",
    pattern="uniform",
    load=0.22,                       # bytes/ns/node offered
    seed=1,
    warmup_ns=10_000.0,
    engine_kw=dict(
        routing_engines_per_switch=0,    # per-port engines (the paper's model)
        arrival_process="deterministic",
        message_packets=4,
        buffer_packets_per_vl=4,
    ),
)


@pytest.mark.parametrize("backend", ["heap", "wheel"])
def test_raw_event_dispatch(benchmark, backend):
    """Schedule+fire cost of a bare event chain."""

    def run_chain():
        eng = make_engine(backend)

        def tick():
            if eng.now < 10_000.0:
                eng.schedule_after(1.0, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return eng.events_processed

    events = benchmark(run_chain)
    assert events == 10_001


@pytest.mark.parametrize("backend", ["heap", "wheel"])
def test_mixed_schedule(benchmark, backend):
    """Dispatch with a populated queue (closer to simulator reality)."""

    def run():
        eng = make_engine(backend)
        for i in range(5_000):
            eng.schedule(float(i % 97), lambda: None)
        eng.run()
        return eng.events_processed

    assert benchmark(run) == 5_000


@pytest.mark.parametrize("backend", ["heap", "wheel"])
def test_subnet_simulation_rate(benchmark, backend):
    """Packets simulated per wall-second on the 8-port 2-tree at a
    moderate uniform load (the workhorse configuration)."""

    def run():
        net = build_subnet(
            8, 2, "mlid", SimConfig(num_vls=1, engine=backend), seed=1
        )
        net.attach_pattern(UniformPattern(net.num_nodes))
        res = net.run_measurement(0.3, warmup_ns=2_000, measure_ns=30_000)
        return res["packets"]

    packets = benchmark.pedantic(run, rounds=3, iterations=1)
    assert packets > 500


def _timed_run(backend: str, measure_ns: float):
    """One FT(8,3) benchmark run; returns (wall_s, stats, events)."""
    c = BENCH_CONFIG
    cfg = SimConfig(engine=backend, **c["engine_kw"])
    net = build_subnet(c["m"], c["n"], c["scheme"], cfg=cfg, seed=c["seed"])
    net.attach_pattern(make_pattern(c["pattern"], net.num_nodes))
    gc.collect()
    start = time.perf_counter()
    stats = net.run_measurement(
        c["load"], warmup_ns=c["warmup_ns"], measure_ns=measure_ns
    )
    wall = time.perf_counter() - start
    return wall, stats, net.engine.events_processed


def test_backend_speedup_ft8_3():
    """Headline: wheel vs. heap packets/sec on FT(8,3) uniform traffic,
    with in-run bit-identity verification.  Writes BENCH_engine.json."""
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    measure_ns = 300_000.0 if full else 60_000.0
    reps = 7 if full else 3

    walls = {"heap": [], "wheel": []}
    results = {}
    for _ in range(reps):  # interleaved: one pair per repetition
        for backend in ("heap", "wheel"):
            wall, stats, events = _timed_run(backend, measure_ns)
            walls[backend].append(wall)
            previous = results.setdefault(backend, (stats, events))
            # Same backend, same seed: runs must be exactly repeatable.
            assert previous == (stats, events)

    # Bit-identity across backends — the speedup compares identical work.
    assert results["heap"] == results["wheel"]
    stats, events = results["wheel"]
    packets = stats["packets"]

    best = {b: min(w) for b, w in walls.items()}
    speedup = best["heap"] / best["wheel"]
    path = write_bench_report(
        "BENCH_engine.json",
        "FT(8,3) mlid, uniform traffic",
        full=full,
        config={
            **{k: v for k, v in BENCH_CONFIG.items() if k != "engine_kw"},
            **BENCH_CONFIG["engine_kw"],
            "measure_ns": measure_ns,
        },
        protocol={
            "repetitions": reps,
            "interleaved": True,
            "statistic": "min",
        },
        simulated={"events": events, "packets": packets},
        backends={
            b: {
                "wall_s": [round(w, 4) for w in walls[b]],
                "best_s": round(best[b], 4),
                "events_per_s": round(events / best[b]),
                "packets_per_s": round(packets / best[b]),
            }
            for b in ("heap", "wheel")
        },
        speedup_packets_per_s=round(speedup, 3),
    )
    print(f"\nwheel speedup over heap: {speedup:.2f}x  -> {path}")

    # Regression guard, deliberately looser than the committed-evidence
    # headline (~2x on an idle host): CI boxes are noisy and shared.
    assert speedup > 1.3
