"""A5 — engine microbenchmarks: events/second of the DES core and
packets/second of the full subnet simulator.

These are true microbenchmarks (multiple rounds) — they track the
substrate's performance so simulator regressions are visible.
"""

from repro.ib.config import SimConfig
from repro.ib.subnet import build_subnet
from repro.sim.engine import Engine
from repro.traffic import UniformPattern


def test_raw_event_dispatch(benchmark):
    """Schedule+fire cost of a bare event chain."""

    def run_chain():
        eng = Engine()

        def tick():
            if eng.now < 10_000.0:
                eng.schedule_after(1.0, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return eng.events_processed

    events = benchmark(run_chain)
    assert events == 10_001


def test_heap_mixed_schedule(benchmark):
    """Dispatch with a populated heap (closer to simulator reality)."""

    def run():
        eng = Engine()
        for i in range(5_000):
            eng.schedule(float(i % 97), lambda: None)
        eng.run()
        return eng.events_processed

    assert benchmark(run) == 5_000


def test_subnet_simulation_rate(benchmark):
    """Packets simulated per wall-second on the 8-port 2-tree at a
    moderate uniform load (the workhorse configuration)."""

    def run():
        net = build_subnet(8, 2, "mlid", SimConfig(num_vls=1), seed=1)
        net.attach_pattern(UniformPattern(net.num_nodes))
        res = net.run_measurement(0.3, warmup_ns=2_000, measure_ns=30_000)
        return res["packets"]

    packets = benchmark.pedantic(run, rounds=3, iterations=1)
    assert packets > 500
