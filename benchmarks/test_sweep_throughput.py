"""Sweep-executor throughput: serial vs artifact-cached vs parallel.

Measures points/sec for one quick-grid ``run_figure`` (fig13, the
8-port 2-tree headline figure; ``REPRO_BENCH_FULL=1`` selects its full
grid) under three execution modes:

* ``serial fresh`` — ``jobs=1, cache=False``: the historical behavior,
  every point rebuilds FatTree + scheme + LFTs;
* ``serial cached`` — ``jobs=1, cache=True``: the per-process
  routing-artifact cache (the default everywhere now);
* ``parallel cached`` — ``jobs=min(4, cpus)``: process-pool fan-out on
  top of per-worker caches.

All three modes must produce bit-identical curves — that determinism
guarantee is asserted here on every run, so this benchmark doubles as
an integration test of the executor.  The speedup column is relative
to ``serial fresh``; on a multi-core host the parallel row is the
headline number, on a single core it degrades to pool overhead and
only the cache row shows a gain.
"""

from __future__ import annotations

import os
import time
from multiprocessing import cpu_count

from repro.experiments.configs import get_experiment
from repro.experiments.report import render_table
from repro.experiments.sweep import run_figure
from repro.ib.artifacts import artifact_cache_info, clear_artifact_cache

EXP_ID = "fig13"


def measure():
    config = get_experiment(EXP_ID)
    quick = os.environ.get("REPRO_BENCH_FULL", "0") != "1"
    loads = config.quick_loads if quick else config.loads
    seeds = config.quick_seeds if quick else config.seeds
    num_points = (
        len(config.vl_counts) * len(config.schemes) * len(loads) * len(seeds)
    )
    jobs = min(4, cpu_count())
    modes = [
        ("serial fresh", dict(jobs=1, cache=False)),
        ("serial cached", dict(jobs=1, cache=True)),
        (f"parallel x{jobs} cached", dict(jobs=jobs, cache=True)),
    ]
    rows = []
    curves = {}
    cache_info = {}
    for name, kwargs in modes:
        clear_artifact_cache()
        t0 = time.perf_counter()
        curves[name] = run_figure(config, quick=quick, **kwargs).curves
        elapsed = time.perf_counter() - t0
        if name == "serial cached":
            # Parallel mode fills per-worker caches, invisible here.
            cache_info = artifact_cache_info()
        rows.append(
            {
                "mode": name,
                "points": num_points,
                "seconds": elapsed,
                "points/sec": num_points / elapsed,
            }
        )
    baseline = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = baseline / row["seconds"]
    # Determinism guarantee: every mode reproduces the same curves.
    reference = curves[modes[0][0]]
    for name, _ in modes[1:]:
        assert curves[name] == reference, f"{name} diverged from serial fresh"
    return rows, cache_info, num_points


def test_sweep_throughput(benchmark, save_result):
    rows, cache_info, num_points = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    text = render_table(
        rows,
        title=(
            f"sweep executor throughput — {EXP_ID}, {num_points} points "
            f"({cpu_count()} cpus; parent cache after serial-cached run: "
            f"{cache_info['hits']} hits / {cache_info['misses']} misses)"
        ),
    )
    save_result("sweep_throughput", text)
    # The cache must never hurt: allow timing noise but catch pathology.
    serial, cached = rows[0], rows[1]
    assert cached["seconds"] < serial["seconds"] * 1.25
    # One artifact build per (scheme, VL) curve, the rest cache hits.
    config = get_experiment(EXP_ID)
    assert cache_info["misses"] == len(config.schemes) * len(config.vl_counts)
