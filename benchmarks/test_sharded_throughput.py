"""Sharded-engine throughput: packets/second vs shard count.

Measures the conservative parallel engine (``repro.sim.sharded``)
against the single-process wheel on the two ISSUE-locked topologies —
FT(16,2) and FT(8,3), both 128 nodes — at knee-region loads (the
saturation-deciding points the sharded engine exists to accelerate),
and writes ``BENCH_sharded.json``.

Protocol: wall time is the minimum over interleaved repetitions
(wheel, 1-shard, 2-shard, 4-shard, wheel, ...), the same statistic as
``test_engine_throughput``; packets/s divides the measured window's
delivered packets by that wall time.  The 1-shard row isolates the
window-protocol + process overhead (it simulates bit-identically to
the wheel).

Transport ablation: the ``sharded-2-pipe`` row re-runs the 2-shard
point over the legacy pickled-tuple Pipe transport so the speedup from
the shm-ring transport (the default) is attributable.  The ablation
runs at shards=2, not shards=1, because a 1-shard fleet has no cut
links — both transports take the identical no-cuts fast path and would
measure the same thing.  The two 2-shard rows must simulate
bit-identically (the differential suite pins this record-for-record);
only wall time may differ.

The ≥3x-on-4-shards acceptance assertion is gated on the host actually
having ≥4 CPUs — conservative parallel simulation cannot beat the
serial engine on a 1-core box, and the provenance stamp
(``cpu_count``) records which regime produced the committed numbers.
Set ``REPRO_BENCH_FULL=1`` for the committed-evidence protocol.
"""

import os
import time

import pytest

from conftest import write_bench_report
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

#: Knee-region loads (bytes/ns/node): just past the throughput knee of
#: the mlid uniform curves for each topology.
BENCH_NETS = [
    dict(m=16, n=2, load=0.45),
    dict(m=8, n=3, load=0.22),
]
SHARD_COUNTS = (1, 2, 4)
SEED = 1
WARMUP_NS = 5_000.0


def _timed_point(m, n, load, measure_ns, cfg):
    start = time.perf_counter()
    res = run_point(
        m,
        n,
        "mlid",
        "uniform",
        load,
        cfg=cfg,
        warmup_ns=WARMUP_NS,
        measure_ns=measure_ns,
        seed=SEED,
        cache=False,
    )
    wall = time.perf_counter() - start
    return wall, res


def test_sharded_packets_per_second():
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    measure_ns = 120_000.0 if full else 20_000.0
    reps = 3 if full else 2
    cpu_count = os.cpu_count() or 1

    engines = [("wheel", SimConfig())]
    engines += [
        (f"sharded-{k}", SimConfig(engine="sharded", shards=k))
        for k in SHARD_COUNTS
    ]
    # Transport ablation: the same 2-shard point over the pipe oracle.
    engines.append(
        (
            "sharded-2-pipe",
            SimConfig(engine="sharded", shards=2, shard_transport="pipe"),
        )
    )
    walls = {name: [] for name, _ in engines}
    results = {}
    for _ in range(reps):  # interleaved: one full set per repetition
        for name, cfg in engines:
            for net in BENCH_NETS:
                wall, res = _timed_point(
                    net["m"], net["n"], net["load"], measure_ns, cfg
                )
                walls[name].append((net["m"], net["n"], wall))
                key = (name, net["m"], net["n"])
                previous = results.setdefault(key, res)
                # Same engine, same seed: exactly repeatable.
                assert previous == res

    nets_report = {}
    for net in BENCH_NETS:
        m, n = net["m"], net["n"]
        per_engine = {}
        for name, _cfg in engines:
            best = min(w for (wm, wn, w) in walls[name] if (wm, wn) == (m, n))
            res = results[(name, m, n)]
            per_engine[name] = {
                "best_s": round(best, 4),
                "packets": res["packets"],
                "packets_per_s": round(res["packets"] / best),
                "accepted": round(res["accepted"], 4),
            }
        wheel_pps = per_engine["wheel"]["packets_per_s"]
        for name in per_engine:
            per_engine[name]["speedup_vs_wheel"] = round(
                per_engine[name]["packets_per_s"] / wheel_pps, 3
            )
        # Statistical agreement at the knee: the parallel engine must
        # measure the same physics it is accelerating.
        for name, _cfg in engines[1:]:
            assert per_engine[name]["accepted"] == pytest.approx(
                per_engine["wheel"]["accepted"], rel=0.03
            )
        # The transport is pure plumbing: both 2-shard rows simulate
        # identically, so any packets/s gap is attributable to it alone.
        assert (
            results[("sharded-2-pipe", m, n)] == results[("sharded-2", m, n)]
        )
        nets_report[f"FT({m},{n})"] = {
            "load": net["load"],
            "engines": per_engine,
        }

    path = write_bench_report(
        "BENCH_sharded.json",
        "sharded engine packets/s vs shard count (mlid, uniform)",
        full=full,
        config={
            "scheme": "mlid",
            "pattern": "uniform",
            "seed": SEED,
            "warmup_ns": WARMUP_NS,
            "measure_ns": measure_ns,
            "shard_counts": list(SHARD_COUNTS),
            "shard_transport": "shm (sharded-2-pipe row: pipe)",
        },
        protocol={
            "repetitions": reps,
            "interleaved": True,
            "statistic": "min",
        },
        networks=nets_report,
    )
    for net_name, data in nets_report.items():
        line = ", ".join(
            f"{name} {e['packets_per_s']:,} pkt/s ({e['speedup_vs_wheel']}x)"
            for name, e in data["engines"].items()
        )
        print(f"\n{net_name} @ {data['load']}: {line}")
    print(f"-> {path}")

    # Acceptance: >=3x on 4 shards at the knee — only assertable where
    # 4 shard processes actually get 4 cores (the provenance stamp
    # records cpu_count either way).
    if cpu_count >= 4:
        ft16 = nets_report["FT(16,2)"]["engines"]
        assert ft16["sharded-4"]["speedup_vs_wheel"] >= 3.0
    else:
        print(
            f"(cpu_count={cpu_count}: >=3x speedup assertion skipped — "
            "parallel speedup needs >=4 cores)"
        )
