"""A6 — path-selection policy ablation (extension beyond the paper).

The paper selects the path offset by source rank.  This ablation holds
the addressing and forwarding fixed and swaps only the selection
policy: the paper's rank, a pair hash, and a destination-staggered
rank (see :mod:`repro.core.extensions`).  Measured on both workloads
at a high offered load.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

SCHEMES = ["slid", "mlid", "mlid-hash", "mlid-stagger"]
LOAD = 0.8


def sweep():
    rows = []
    for pattern in ("uniform", "centric"):
        for scheme in SCHEMES:
            res = run_point(
                8, 2, scheme, pattern, LOAD,
                cfg=SimConfig(num_vls=1),
                warmup_ns=20_000, measure_ns=80_000, seed=1,
            )
            rows.append(
                {
                    "pattern": pattern,
                    "scheme": scheme,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                }
            )
    return rows


def test_path_selection_policies(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a6_path_selection",
        render_table(
            rows, title=f"A6: path-selection policies, FT(8,2) @ {LOAD}, 1 VL"
        ),
    )
    acc = {(r["pattern"], r["scheme"]): r["accepted"] for r in rows}
    # Hot-spot: every multi-LID policy beats the single-LID baseline.
    for scheme in ("mlid", "mlid-hash", "mlid-stagger"):
        assert acc[("centric", scheme)] > acc[("centric", "slid")] * 0.95
