"""A11 — collective workloads (extension beyond the paper).

MLID vs SLID under the communication structures fat-trees are bought
for: pipelined all-to-all, recursive doubling (allreduce) and ring
exchange, at a moderate fixed load on the 8-port 2-tree.
"""

from repro.experiments.report import render_table
from repro.ib.config import SimConfig
from repro.ib.subnet import build_subnet
from repro.traffic import make_pattern

LOAD = 0.3
WORKLOADS = ("alltoall", "recursivedoubling", "ring")


def sweep():
    rows = []
    for workload in WORKLOADS:
        for scheme in ("slid", "mlid"):
            net = build_subnet(8, 2, scheme, SimConfig(num_vls=1), seed=1)
            net.attach_pattern(make_pattern(workload, net.num_nodes))
            res = net.run_measurement(LOAD, warmup_ns=20_000, measure_ns=80_000)
            rows.append(
                {
                    "workload": workload,
                    "scheme": scheme,
                    "offered": LOAD,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                    "latency_p99": res["latency_p99"],
                }
            )
    return rows


def test_collectives(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a11_collectives",
        render_table(rows, title=f"A11: collective workloads, FT(8,2) @ {LOAD}"),
    )
    by = {(r["workload"], r["scheme"]): r for r in rows}
    for workload in WORKLOADS:
        for scheme in ("slid", "mlid"):
            # Below saturation these admissible schedules deliver fully.
            assert by[(workload, scheme)]["accepted"] > LOAD * 0.85
    # Ring (nearest neighbour) is the cheapest in latency.
    assert (
        by[("ring", "mlid")]["latency_mean"]
        < by[("alltoall", "mlid")]["latency_mean"]
    )
