"""A1 — static path-distribution ablation (no simulation).

The structural mechanism behind the paper's results: under all-to-one
traffic, SLID concentrates every flow on one least common ancestor
while MLID spreads flows across all of them.  We count turning switches
and the hottest internal channel for each scheme on each evaluated
topology.
"""

from repro.core.scheme import get_scheme
from repro.core.verification import lca_usage, link_loads_all_to_one
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree

CONFIGS = [(4, 2), (8, 2), (16, 2), (8, 3)]


def analyze():
    rows = []
    for m, n in CONFIGS:
        ft = FatTree(m, n)
        dst = ft.nodes[0]
        terminal = ((dst[: n - 1], n - 1), dst[n - 1])
        for name in ("slid", "mlid"):
            scheme = get_scheme(name, ft)
            usage = lca_usage(scheme, dst)
            loads = link_loads_all_to_one(scheme, dst)
            loads.pop(terminal, None)  # the unavoidable last link
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "scheme": name,
                    "turn switches": len(usage),
                    "max turns/switch": max(usage.values()),
                    "hottest channel": max(loads.values()),
                }
            )
    return rows


def test_path_distribution(benchmark, save_result):
    rows = benchmark(analyze)
    save_result(
        "a1_path_distribution",
        render_table(rows, title="A1: all-to-one spreading (static)"),
    )
    by = {(r["m"], r["n"], r["scheme"]): r for r in rows}
    for m, n in CONFIGS:
        slid, mlid = by[(m, n, "slid")], by[(m, n, "mlid")]
        # MLID turns at strictly more switches and its hottest internal
        # channel is strictly cooler.
        assert mlid["turn switches"] > slid["turn switches"]
        assert mlid["hottest channel"] < slid["hottest channel"]
