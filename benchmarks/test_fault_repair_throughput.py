"""A6 — fault-repair microbenchmarks: wall time of one SM re-sweep,
scalar oracle vs. batched kernel vs. incremental kernel.

The headline (``test_repair_speedup``) times the three repair backends
on the scenarios the dynamic SM actually faces —

* ``single-link``  one link dies, repair once;
* ``multi-link``   four random links die at once, repair once;
* ``flapping``     a six-step fail/recover sequence of single-link
                   deltas (the incremental kernel's home turf: each
                   step's delta touches one descent cone);

— and persists the evidence to
``benchmarks/results/BENCH_fault_repair.json`` (quick grids go to
``results/quick/``).

Measurement protocol
--------------------
Wall time is the **minimum over N interleaved repetitions** (scalar,
batched, incremental, scalar, ...): minimum because timing noise on a
shared host is strictly additive, interleaved so machine-load drift
biases every backend equally.  Per backend:

* *scalar* times ``FaultTolerantTables(scheme, fs)`` per fault set —
  construction included, because that is exactly what the scalar
  online path pays per re-sweep;
* *batched* times ``kernel.repair(fs, incremental=False)`` on a
  persistent kernel — the one-time adjacency/base-table compile is
  excluded (it happens once at subnet bring-up, not per repair);
* *incremental* warms the kernel with the previous fault state
  (untimed), then times the delta repairs — the steady-state online
  path.

Where the scalar runs, the final tables of all three backends are
asserted bit-identical in-run, so the speedups compare identical work.

Set ``REPRO_BENCH_FULL=1`` for the committed-evidence protocol
(FT(8,3) + FT(16,2) + FT(16,3), 3 repetitions); the default quick grid
(FT(8,3) only) keeps CI smoke runs short.  FT(16,3) needs 65536 LIDs —
past the strict-IBA unicast ceiling — so its scheme is compiled with
``strict_iba=False``; its scalar flapping leg is skipped (six ~17 s
sweeps) and recorded as null.
"""

import gc
import os
import time

import numpy as np

from repro.core.fault import FaultSet, FaultTolerantTables
from repro.core.fault_kernel import FaultRepairKernel
from repro.core.forwarding import MlidScheme
from repro.core.scheme import get_scheme
from repro.topology.fattree import FatTree

from conftest import write_bench_report


SCENARIOS = ["single-link", "multi-link", "flapping"]

#: Scenarios too slow for a backend are recorded as null, not timed.
SKIP = {("FT(16,3)", "flapping"): {"scalar"}}


def _networks(full):
    nets = [("FT(8,3)", 8, 3)]
    if full:
        nets += [("FT(16,2)", 16, 2), ("FT(16,3)", 16, 3)]
    return nets


def _compile(m, n):
    ft = FatTree(m, n)
    try:
        scheme = get_scheme("mlid", ft)
    except ValueError:
        # FT(16,3)'s 65536-LID plan exceeds the strict-IBA unicast
        # ceiling; the benchmark cares about repair cost, not LID law.
        scheme = MlidScheme(ft, strict_iba=False)
    return scheme, FaultRepairKernel(scheme)


def _fault_sequence(ft, scenario):
    """The fault sets one re-sweep sequence walks through, in order."""
    if scenario == "single-link":
        return [FaultSet.random(ft, 1, seed=2)]
    if scenario == "multi-link":
        return [FaultSet.random(ft, 4, seed=7)]
    a = FaultSet.random(ft, 1, seed=2).links
    b = FaultSet.random(ft, 1, seed=3).links
    assert a != b
    fa, fb, fab = FaultSet(links=a), FaultSet(links=b), FaultSet(links=a | b)
    return [fa, fab, fb, fab, fa, fab]


def _run_scalar(scheme, sets):
    gc.collect()
    start = time.perf_counter()
    for fs in sets:
        ftt = FaultTolerantTables(scheme, fs)
    wall = time.perf_counter() - start
    final = np.array([ftt.tables[sw] for sw in scheme.ft.switches])
    return wall, final


def _run_batched(kernel, sets):
    kernel.reset()
    gc.collect()
    start = time.perf_counter()
    for fs in sets:
        result = kernel.repair(fs, incremental=False)
    wall = time.perf_counter() - start
    return wall, np.asarray(result.array)


def _run_incremental(kernel, sets):
    # Warm the cache with the pre-event state (the SM's bring-up sweep
    # already paid for it online), then time the delta repairs.
    kernel.reset()
    kernel.repair(FaultSet())
    gc.collect()
    start = time.perf_counter()
    for fs in sets:
        result = kernel.repair(fs)
    wall = time.perf_counter() - start
    return wall, np.asarray(result.array)


_RUNNERS = {
    "scalar": lambda scheme, kernel, sets: _run_scalar(scheme, sets),
    "batched": lambda scheme, kernel, sets: _run_batched(kernel, sets),
    "incremental": lambda scheme, kernel, sets: _run_incremental(kernel, sets),
}


def test_repair_speedup():
    """Headline: repair wall time per backend per scenario, with in-run
    bit-identity verification.  Writes BENCH_fault_repair.json."""
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    reps = 3

    report_nets = {}
    for name, m, n in _networks(full):
        scheme, kernel = _compile(m, n)
        ft = scheme.ft
        scenarios = {}
        for scenario in SCENARIOS:
            sets = _fault_sequence(ft, scenario)
            skipped = SKIP.get((name, scenario), set())
            walls = {b: [] for b in _RUNNERS if b not in skipped}
            finals = {}
            for _ in range(reps):  # interleaved: one backend each, per rep
                for backend in walls:
                    wall, final = _RUNNERS[backend](scheme, kernel, sets)
                    walls[backend].append(wall)
                    finals[backend] = final
            # Bit-identity: every backend repaired to the same tables.
            for backend, final in finals.items():
                np.testing.assert_array_equal(
                    final, finals["batched"], err_msg=f"{name} {scenario} {backend}"
                )
            entry = {
                b: {
                    "wall_s": [round(w, 5) for w in ws],
                    "best_s": round(min(ws), 5),
                }
                for b, ws in walls.items()
            }
            for b in skipped:
                entry[b] = None
            if "scalar" in walls:
                entry["speedup_scalar_to_batched"] = round(
                    min(walls["scalar"]) / min(walls["batched"]), 2
                )
            entry["speedup_batched_to_incremental"] = round(
                min(walls["batched"]) / min(walls["incremental"]), 2
            )
            scenarios[scenario] = entry
        report_nets[name] = {
            "num_switches": ft.num_switches,
            "num_lids": scheme.num_lids,
            "scenarios": scenarios,
        }

    path = write_bench_report(
        "BENCH_fault_repair.json",
        "SM fault-repair re-sweep, scalar vs batched vs incremental",
        full=full,
        config={
            "scheme": "mlid",
            "strict_iba": "relaxed only where the LID plan exceeds 48K",
        },
        protocol={
            "repetitions": reps,
            "interleaved": True,
            "statistic": "min",
            "scalar_timing": "FaultTolerantTables construction per fault set",
            "kernel_timing": "repair() on a persistent kernel; compile excluded",
            "incremental_timing": "delta repairs from a warmed cache",
            "flapping_sequence": "A, A+B, B, A+B, A, A+B (single-link deltas)",
        },
        networks=report_nets,
    )
    print(f"\nfault-repair benchmark grid={'full' if full else 'quick'} -> {path}")

    # Regression guards, looser than the committed-evidence headline:
    # CI boxes are noisy and shared.
    quick = report_nets["FT(8,3)"]["scenarios"]
    assert quick["single-link"]["speedup_scalar_to_batched"] > 3.0
    if full:
        big = report_nets["FT(16,3)"]["scenarios"]
        # The acceptance pair: >=10x scalar->batched on FT(16,3)
        # single-link, and incremental beating batched on flapping.
        assert big["single-link"]["speedup_scalar_to_batched"] >= 10.0
        assert (
            big["flapping"]["incremental"]["best_s"]
            < big["flapping"]["batched"]["best_s"]
        )
