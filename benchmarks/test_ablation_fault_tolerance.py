"""A9 — degraded-fabric performance (extension beyond the paper).

The paper notes routing is fixed "unless a subnet reconfiguration …
re-assigns forwarding table for each switch".  This ablation performs
that reconfiguration for growing random link-failure counts and
measures what survives: repaired-entry counts, delivered bandwidth and
latency under uniform traffic, for both schemes.
"""

from repro.core.fault import FaultSet, FaultTolerantTables
from repro.core.scheme import get_scheme
from repro.experiments.report import render_table
from repro.ib.config import SimConfig
from repro.ib.subnet import build_subnet
from repro.topology.fattree import FatTree
from repro.traffic import UniformPattern

LOAD = 0.3
FAILURES = (0, 1, 2, 4)


def run_one(scheme_name, failures):
    ft = FatTree(8, 2)
    scheme = get_scheme(scheme_name, ft)
    faults = FaultSet.random(ft, failures, seed=42)
    ftt = FaultTolerantTables(scheme, faults)
    net = build_subnet(8, 2, ftt.as_scheme(), SimConfig(num_vls=1), seed=1)
    net.attach_pattern(UniformPattern(net.num_nodes))
    res = net.run_measurement(LOAD, warmup_ns=20_000, measure_ns=60_000)
    return {
        "scheme": scheme_name,
        "failed links": failures,
        "repaired entries": ftt.repaired_entries,
        "accepted": res["accepted"],
        "latency_mean": res["latency_mean"],
    }


def sweep():
    return [
        run_one(name, count)
        for name in ("slid", "mlid")
        for count in FAILURES
    ]


def test_fault_tolerance(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a9_fault_tolerance",
        render_table(
            rows,
            title=f"A9: random link failures, FT(8,2) uniform @ {LOAD}",
        ),
    )
    acc = {(r["scheme"], r["failed links"]): r["accepted"] for r in rows}
    for name in ("slid", "mlid"):
        # The fabric keeps delivering under failures; at this moderate
        # load even 4 dead links cost little bandwidth.
        assert acc[(name, 4)] > 0.8 * acc[(name, 0)]
