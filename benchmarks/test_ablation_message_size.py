"""A13 — message size and buffer depth (beyond the paper's fixed sizes).

The paper fixes one packet per message and one packet per VL buffer.
This ablation varies both at a fixed offered byte load:

* longer messages (k packets back-to-back) raise message latency
  roughly linearly in k while byte throughput holds;
* deeper buffers lift the saturation point by absorbing head-of-line
  blocking (the mechanism VLs also exploit).
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

LOAD = 0.25


def sweep():
    rows = []
    for msg in (1, 4, 16):
        cfg = SimConfig(num_vls=1, message_packets=msg)
        res = run_point(
            8, 2, "mlid", "uniform", LOAD,
            cfg=cfg, warmup_ns=20_000, measure_ns=80_000, seed=1,
        )
        rows.append(
            {
                "knob": f"message={msg}pkt",
                "accepted": res["accepted"],
                "latency_mean": res["latency_mean"],
                "latency_total": res["latency_total_mean"],
            }
        )
    for buf in (1, 2, 4):
        cfg = SimConfig(num_vls=1, buffer_packets_per_vl=buf)
        res = run_point(
            8, 2, "mlid", "uniform", 1.0,  # past saturation
            cfg=cfg, warmup_ns=20_000, measure_ns=60_000, seed=1,
        )
        rows.append(
            {
                "knob": f"buffer={buf}pkt@sat",
                "accepted": res["accepted"],
                "latency_mean": res["latency_mean"],
                "latency_total": res["latency_total_mean"],
            }
        )
    return rows


def test_message_size_and_buffers(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a13_message_size",
        render_table(rows, title="A13: message size and buffer depth"),
    )
    by = {r["knob"]: r for r in rows}
    # Byte throughput holds across message sizes below saturation...
    assert by["message=16pkt"]["accepted"] > 0.9 * by["message=1pkt"]["accepted"]
    # ...while end-to-end message latency grows with length.
    assert (
        by["message=16pkt"]["latency_total"]
        > 4 * by["message=1pkt"]["latency_total"]
    )
    # Buffer depth monotonically raises the saturated throughput.
    assert (
        by["buffer=4pkt@sat"]["accepted"]
        > by["buffer=2pkt@sat"]["accepted"]
        > by["buffer=1pkt@sat"]["accepted"]
    )
