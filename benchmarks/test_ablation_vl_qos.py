"""A8 — QoS via IBA weighted VL arbitration (extension beyond the paper).

System-level demonstration on a deliberately contended wire: one
source is overloaded at 2x link rate with traffic to two destinations
that share its whole path except the terminal link.  The destinations
are mapped to different VLs ("dest" policy), so the source NIC's
transmitter arbitrates every packet between the two classes:

* round-robin (the paper's model) splits the wire 50/50;
* an IBA weighted table shapes the split toward its weights.

(The hot-spot workload cannot show this effect: its binding resource —
the hot ejection link — carries a single VL class, so arbitration never
gets a choice.  That negative result is asserted too.)
"""

from repro.experiments.report import render_table
from repro.ib.config import SimConfig
from repro.ib.subnet import build_subnet
from repro.traffic import CentricPattern

DST_A, DST_B = 16, 17  # nodes (4,0) and (4,1): VL0 and VL1 classes


def contended_source(weights, arbitration):
    cfg = SimConfig(
        num_vls=2,
        vl_policy="dest",
        vl_arbitration=arbitration,
        vl_weights=weights,
        buffer_packets_per_vl=4,
    )
    net = build_subnet(8, 2, "mlid", cfg, seed=1)

    def pattern(pid):
        toggle = [False]

        def choose(_rng):
            toggle[0] = not toggle[0]
            return DST_A if toggle[0] else DST_B

        return choose

    net.attach_pattern(pattern)
    # Only node 0 generates, at 2x the link rate.
    rate = cfg.offered_load_to_rate(2.0)
    net.endnodes[0].latency = None
    for node in net.endnodes:
        node.throughput = None
    net.endnodes[0].start_generation(rate)
    net.engine.run(until=100_000)
    a = net.endnodes[DST_A].packets_received
    b = net.endnodes[DST_B].packets_received
    return {
        "arbitration": arbitration if not weights else f"weighted{weights}",
        "to_vl0_dst": a,
        "to_vl1_dst": b,
        "vl1 share": b / (a + b),
    }


def hot_spot_null_result():
    """Arbitration cannot shape single-class bottlenecks: centric
    traffic shares are weight-independent."""
    shares = []
    for weights in (None, (1, 8)):
        cfg = SimConfig(
            num_vls=2,
            vl_policy="dest",
            vl_arbitration="roundrobin" if weights is None else "weighted",
            vl_weights=weights,
        )
        net = build_subnet(8, 2, "mlid", cfg, seed=1)
        net.attach_pattern(CentricPattern(net.num_nodes, 0, 0.5))
        net.run_measurement(0.6, warmup_ns=15_000, measure_ns=50_000)
        pd = net.throughput.per_destination
        hot = sum(v for k, v in pd.items() if k % 2 == 0)
        bg = sum(v for k, v in pd.items() if k % 2 == 1)
        shares.append(bg / (hot + bg))
    return shares


def sweep():
    rows = [
        contended_source(None, "roundrobin"),
        contended_source((4, 4), "weighted"),
        contended_source((4, 32), "weighted"),
        contended_source((32, 4), "weighted"),
    ]
    return rows


def test_vl_qos(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a8_vl_qos",
        render_table(
            rows, title="A8: weighted arbitration on an overloaded source wire"
        ),
    )
    rr, even, favor_b, favor_a = rows
    assert abs(rr["vl1 share"] - 0.5) < 0.05
    assert abs(even["vl1 share"] - rr["vl1 share"]) < 0.05
    # Weights are 64-byte units; 256-byte packets cost 4 units, so
    # (4, 32) is a 1:8 packet ratio.
    assert favor_b["vl1 share"] > 0.8
    assert favor_a["vl1 share"] < 0.2

    null_a, null_b = hot_spot_null_result()
    assert abs(null_a - null_b) < 0.05
