"""A15 — the irregular-topology baseline (the paper's motivating claim).

The paper's introduction argues that routing algorithms designed for
irregular topologies "may not take all the properties of a regular
topology into account and usually cannot deliver satisfactory
performance" on fat-trees.  This ablation measures it: generic BFS
up*/down* routing (``repro.core.updown``) against SLID and MLID on the
8-port 2-tree, uniform traffic.  Up*/down* funnels all inter-group
traffic through its single BFS root (1 of 4 root switches), so its
saturation collapses to roughly the BFS-root component's capacity.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

SCHEMES = ("updn", "slid", "mlid")
LOADS = (0.1, 0.3, 0.6)


def sweep():
    rows = []
    for scheme in SCHEMES:
        for load in LOADS:
            res = run_point(
                8, 2, scheme, "uniform", load,
                cfg=SimConfig(num_vls=1),
                warmup_ns=20_000, measure_ns=60_000, seed=1,
            )
            rows.append(
                {
                    "scheme": scheme,
                    "offered": load,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                }
            )
    return rows


def test_updown_baseline(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a15_updown_baseline",
        render_table(
            rows, title="A15: generic up*/down* vs SLID/MLID, FT(8,2) uniform"
        ),
    )
    sat = {
        scheme: max(r["accepted"] for r in rows if r["scheme"] == scheme)
        for scheme in SCHEMES
    }
    # The paper's claim, quantified: fat-tree-aware schemes deliver a
    # multiple of the irregular-topology baseline's throughput.
    assert sat["mlid"] > 1.5 * sat["updn"]
    assert sat["slid"] > 1.5 * sat["updn"]
