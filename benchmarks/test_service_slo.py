"""Route-query service SLOs under a live link-flap storm.

Two planes, measured together:

* **in-process** — queries/s of the :class:`RouteQueryService` API
  straight against the snapshot store (what an embedded consumer — a
  traffic generator, an adaptive-routing study — would see).  The
  acceptance floor is 100k queries/s for DLID lookups.
* **TCP** — p50/p99 per-request latency and aggregate queries/s with
  concurrent socket clients hammering a mixed op workload while the
  storm flaps links and the SM republishes snapshots underneath.

The storm is paced (``pace_s``) so repairs land throughout the whole
measurement window instead of finishing instantly; on a 1-core box the
pace also keeps the GIL available to the query threads, which is the
configuration the committed numbers describe (see ``provenance``).

A sampled bit-identity check rides along: with ``keep_lfts=True`` the
publisher archives the LFT objects of every generation, and each
sampled answer is replayed against a fresh
:class:`~repro.core.kernel.RouteKernel` compiled from that archive —
any torn read would diverge.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest
from conftest import write_bench_report

from repro.core.kernel import RouteKernel
from repro.service import LinkFlapStorm, RouteQueryService, ServiceClient

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

M, N, SCHEME = 4, 2, "mlid"
NUM_CLIENTS = 8
TCP_REQUESTS_PER_CLIENT = 400 if FULL else 150
INPROC_BATCH = 20_000
INPROC_TARGET_QPS = 100_000
STORM_PACE_S = 0.002
BIT_IDENTITY_SAMPLES = 64


def _start_server(service):
    """Run a RouteQueryServer on a daemon thread; returns (server, port)."""
    import asyncio

    from repro.service import RouteQueryServer

    server = RouteQueryServer(service, telemetry_interval_s=0.5)
    started = threading.Event()

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_until_complete(server.serve_until_shutdown())
        loop.close()

    thread = threading.Thread(target=run, name="slo-server", daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    return server, thread


def _percentiles(samples_s):
    arr = np.asarray(samples_s, dtype=np.float64) * 1e6  # -> µs
    return {
        "p50_us": round(float(np.percentile(arr, 50)), 1),
        "p99_us": round(float(np.percentile(arr, 99)), 1),
        "max_us": round(float(arr.max()), 1),
        "samples": int(arr.size),
    }


def _tcp_worker(port, num_nodes, requests, out, idx):
    lat = []
    gens = []
    rng = np.random.default_rng(1000 + idx)
    with ServiceClient("127.0.0.1", port) as c:
        for i in range(requests):
            src = int(rng.integers(num_nodes))
            dst = int(rng.integers(num_nodes - 1))
            dst += dst >= src
            t0 = time.perf_counter()
            if i % 4 == 3:
                resp = c.path(src, dst)
            else:
                resp = c.dlid(src, dst)
            lat.append(time.perf_counter() - t0)
            gens.append(resp["generation"])
    out[idx] = (lat, gens)


def test_service_slo():
    horizon = 400_000.0 if FULL else 150_000.0
    storm = LinkFlapStorm(
        M,
        N,
        SCHEME,
        flap_links=2,
        horizon_ns=horizon,
        pace_s=STORM_PACE_S,
        keep_lfts=True,
    )
    service = RouteQueryService(storm.store, storm=storm)
    num_nodes = service.ft.num_nodes
    server, server_thread = _start_server(service)
    port = server.port

    storm.start()
    try:
        # -- in-process plane -----------------------------------------
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, num_nodes, size=(INPROC_BATCH, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        t0 = time.perf_counter()
        for src, dst in pairs:
            service.dlid(int(src), int(dst))
        inproc_wall = time.perf_counter() - t0
        inproc_qps = len(pairs) / inproc_wall

        # -- TCP plane ------------------------------------------------
        out = {}
        threads = [
            threading.Thread(
                target=_tcp_worker,
                args=(port, num_nodes, TCP_REQUESTS_PER_CLIENT, out, i),
            )
            for i in range(NUM_CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tcp_wall = time.perf_counter() - t0
        assert len(out) == NUM_CLIENTS
        all_lat = [s for lat, _ in out.values() for s in lat]
        tcp_qps = len(all_lat) / tcp_wall

        # Generations must be monotonic per connection (snapshots only
        # ever move forward under the storm).
        for lat, gens in out.values():
            assert gens == sorted(gens)

        # -- sampled bit-identity vs archived LFTs --------------------
        checked = 0
        sample_rng = np.random.default_rng(99)
        while checked < BIT_IDENTITY_SAMPLES:
            src = int(sample_rng.integers(num_nodes))
            dst = int(sample_rng.integers(num_nodes - 1))
            dst += dst >= src
            snap = storm.store.get()
            answer = snap.trace(src, dst)
            lfts = storm.publisher.lft_archive[snap.generation]
            oracle_kernel = RouteKernel.from_lfts(storm.mgr.scheme, lfts)
            oracle = oracle_kernel.path(
                service.ft.node_from_pid(src),
                service.ft.node_from_pid(dst),
                dlid=answer.dlid,
            )
            assert answer == oracle
            checked += 1
    finally:
        storm.stop()
        _shutdown(port)
        server_thread.join(timeout=10)

    generations = storm.store.generations
    assert generations == sorted(set(generations)), "non-monotonic publishes"
    assert len(generations) > 2, "storm never published a repair snapshot"

    report_sections = {
        "storm": {
            "flap_links": 2,
            "horizon_ns": horizon,
            "pace_s": STORM_PACE_S,
            "snapshots_published": len(generations),
            "final_generation": generations[-1],
        },
        "in_process": {
            "op": "dlid",
            "queries": len(pairs),
            "wall_s": round(inproc_wall, 4),
            "queries_per_s": round(inproc_qps),
        },
        "tcp": {
            "clients": NUM_CLIENTS,
            "requests_per_client": TCP_REQUESTS_PER_CLIENT,
            "op_mix": "3:1 dlid:path",
            "queries_per_s": round(tcp_qps),
            "latency": _percentiles(all_lat),
        },
        "bit_identity_samples": checked,
    }
    path = write_bench_report(
        "BENCH_service.json",
        f"route-query service SLOs on FT({M},{N}) under a link-flap storm",
        full=FULL,
        config={
            "m": M,
            "n": N,
            "scheme": SCHEME,
            "engine": "wheel",
            "clients": NUM_CLIENTS,
        },
        protocol={
            "storm": "staggered 2-link flaps, paced, snapshots per sweep",
            "tcp_latency": "per-request wall clock at the client",
        },
        **report_sections,
    )
    print(
        f"\nin-process {inproc_qps:,.0f} q/s; TCP {tcp_qps:,.0f} q/s "
        f"p50 {report_sections['tcp']['latency']['p50_us']}µs "
        f"p99 {report_sections['tcp']['latency']['p99_us']}µs "
        f"({len(generations)} snapshots) -> {path}"
    )

    assert inproc_qps >= INPROC_TARGET_QPS, (
        f"in-process floor missed: {inproc_qps:,.0f} < {INPROC_TARGET_QPS:,}"
    )
    # TCP latency guard is generous: shared CI boxes add milliseconds
    # of scheduler noise; the committed evidence reports the real p99.
    assert report_sections["tcp"]["latency"]["p99_us"] < 1_000_000


def _shutdown(port):
    try:
        with ServiceClient("127.0.0.1", port, timeout_s=5.0) as c:
            c.shutdown()
    except (ConnectionError, OSError):
        pass


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
