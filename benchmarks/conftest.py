"""Shared helpers for the benchmark suite.

Every figure benchmark runs its experiment exactly once (rounds=1 —
these are multi-second simulations, not microbenchmarks), prints the
reproduced curves, and writes them to ``benchmarks/results/<id>.txt``
so the EXPERIMENTS.md evidence can be regenerated at any time.

Set ``REPRO_BENCH_FULL=1`` to sweep the full load grids (slow; this is
what the committed EXPERIMENTS.md numbers used).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.experiments import (
    get_experiment,
    render_figure_result,
    run_figure,
)

RESULTS_DIR = Path(__file__).parent / "results"


def provenance() -> dict:
    """Machine/tree provenance stamped into every ``BENCH_*.json``.

    Performance numbers are meaningless without knowing what produced
    them — in particular ``cpu_count`` qualifies any parallel-speedup
    claim (a 1-core CI box cannot show one).
    """
    try:
        commit = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "commit": commit,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def write_bench_report(
    name: str,
    title: str,
    *,
    full: bool,
    config: dict | None = None,
    protocol: dict | None = None,
    **sections,
) -> Path:
    """Assemble and write one ``BENCH_*.json`` with the shared envelope.

    Every benchmark report carries the same skeleton — ``benchmark``
    title, the engine/scheme ``config`` that produced the numbers, a
    measurement ``protocol`` stamped with the grid actually run
    (``full``/``quick``), then its own result sections in the order
    given.  This helper is that skeleton; the provenance stamp comes
    from :func:`write_bench_json` underneath.
    """
    report: dict = {"benchmark": title}
    if config is not None:
        report["config"] = dict(config)
    proto = dict(protocol or {})
    proto.setdefault("grid", "full" if full else "quick")
    report["protocol"] = proto
    report.update(sections)
    return write_bench_json(name, report, full=full)


def write_bench_json(name: str, report: dict, *, full: bool) -> Path:
    """Write one ``BENCH_*.json`` with the provenance stamp prepended.

    Quick-grid runs land in ``results/quick/`` so they never clobber
    the committed full-protocol evidence in ``results/``.
    """
    stamped = {"provenance": provenance(), **report}
    out_dir = RESULTS_DIR if full else RESULTS_DIR / "quick"
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / name
    path.write_text(
        json.dumps(stamped, indent=2) + "\n", encoding="utf-8"
    )
    return path


@pytest.fixture
def figure_bench(benchmark):
    """Fixture: run one paper figure as a benchmark by experiment id."""

    def _run(exp_id: str):
        return bench_figure(benchmark, exp_id)

    return _run


def bench_figure(benchmark, exp_id: str):
    """Run one paper figure as a benchmark; print + persist the result."""
    config = get_experiment(exp_id)
    quick = os.environ.get("REPRO_BENCH_FULL", "0") != "1"

    result_holder = {}

    def once():
        result_holder["result"] = run_figure(config, quick=quick)
        return result_holder["result"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = result_holder["result"]
    text = render_figure_result(result)
    print()
    print(text)
    # Quick-grid runs go to results/quick/ so they never clobber the
    # committed full-sweep evidence in results/.
    out_dir = RESULTS_DIR / "quick" if quick else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{exp_id}.txt").write_text(text, encoding="utf-8")

    # Sanity: every curve produced data.
    for key, points in result.curves.items():
        assert points, f"curve {key} is empty"
    return result


@pytest.fixture
def save_result():
    """Persist an ablation's rendered table."""

    def _save(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")

    return _save
