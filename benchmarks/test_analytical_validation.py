"""A7 — analytical-vs-simulated validation table.

For each evaluated topology, compares the closed-form saturation bound
(the leaf routing engine under uniform traffic; the hot ejection link
under centric traffic) with the measured saturation.  The simulator is
validated when measurements sit just below their binding bound.
"""

from repro.experiments import analytical as an
from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

TOPOLOGIES = [(4, 2), (8, 2), (16, 2), (8, 3)]


def sweep():
    cfg = SimConfig(num_vls=1)
    rows = []
    for m, n in TOPOLOGIES:
        bound = an.uniform_saturation_bound(cfg, m, n)
        res = run_point(
            m, n, "mlid", "uniform", min(1.2, bound * 1.6),
            cfg=cfg, warmup_ns=15_000, measure_ns=60_000, seed=1,
        )
        rows.append(
            {
                "m": m,
                "n": n,
                "pattern": "uniform",
                "bound": bound,
                "measured": res["accepted"],
                "measured/bound": res["accepted"] / bound,
            }
        )
        hot_sat = an.centric_hot_saturation_offered(cfg, m, n, 0.5)
        res = run_point(
            m, n, "mlid", "centric", hot_sat * 0.5,
            cfg=cfg, warmup_ns=30_000, measure_ns=120_000, seed=1,
        )
        rows.append(
            {
                "m": m,
                "n": n,
                "pattern": "centric<sat",
                "bound": hot_sat * 0.5,
                "measured": res["accepted"],
                "measured/bound": res["accepted"] / (hot_sat * 0.5),
            }
        )
    return rows


def test_analytical_validation(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a7_analytical", render_table(rows, title="A7: bounds vs simulation")
    )
    for row in rows:
        # Sub-saturation runs deliver what was offered; saturated
        # uniform runs approach the bound from below.  A few percent
        # above 1.0 can appear for centric points from warmup-backlog
        # drain and small-sample noise at the very low hot-spot rates.
        assert 0.7 <= row["measured/bound"] <= 1.15
