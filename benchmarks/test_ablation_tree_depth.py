"""A3 — tree-depth scaling (the paper's Remark 3).

Fixed offered load on FT(4,2), FT(4,3) and FT(4,4): how the MLID/SLID
saturation relationship evolves as the tree gets taller (more switch
levels, more least common ancestors: 2^(n-1) paths per pair at m=4).
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

LOAD = 0.8
TREES = [(4, 2), (4, 3), (4, 4)]


def sweep():
    rows = []
    for m, n in TREES:
        for scheme in ("slid", "mlid"):
            res = run_point(
                m, n, scheme, "uniform", LOAD,
                cfg=SimConfig(num_vls=1),
                warmup_ns=20_000, measure_ns=60_000, seed=1,
            )
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "nodes": 2 * (m // 2) ** n,
                    "scheme": scheme,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                }
            )
    return rows


def test_tree_depth(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a3_tree_depth",
        render_table(rows, title=f"A3: depth scaling, uniform @ {LOAD}"),
    )
    assert all(r["accepted"] > 0 for r in rows)
