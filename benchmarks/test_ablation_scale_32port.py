"""A10 — 512-node scale test: the 32-port 2-tree.

The largest network the paper's Table 1 implies ("large (16-port or
32-port)" in Observation 1).  One saturation point per scheme and
pattern — the full figure grid at this size is left to
REPRO_BENCH_FULL users.
"""

import os

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig


def sweep():
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    measure = 80_000 if full else 40_000
    rows = []
    for pattern, load in (("uniform", 0.15), ("centric", 0.15)):
        for scheme in ("slid", "mlid"):
            res = run_point(
                32, 2, scheme, pattern, load,
                cfg=SimConfig(num_vls=1),
                warmup_ns=10_000, measure_ns=measure, seed=1,
            )
            rows.append(
                {
                    "pattern": pattern,
                    "scheme": scheme,
                    "offered": load,
                    "accepted": res["accepted"],
                    "latency_mean": res["latency_mean"],
                    "packets": res["packets"],
                }
            )
    return rows


def test_scale_32port(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a10_scale_32port",
        render_table(rows, title="A10: 32-port 2-tree (512 nodes) @ 0.15"),
    )
    acc = {(r["pattern"], r["scheme"]): r["accepted"] for r in rows}
    # Uniform: both schemes near the engine bound (0.08); centric:
    # MLID sustains at least SLID's throughput at 512 nodes.
    assert acc[("uniform", "mlid")] > 0.06
    assert acc[("centric", "mlid")] >= acc[("centric", "slid")] * 0.95
