"""A12 — hot-spot fraction sweep.

The OCR of the paper lost the centric fraction's digit ("k0% centric…
k0 out of 100 packets"); DESIGN.md reconstructs 50%.  This ablation
sweeps the fraction and shows the reproduction's headline (MLID ≥ SLID
under centric traffic) holds across every plausible reading, peaking
where the hot flow saturates its ejection link but the fabric still has
background headroom.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

FRACTIONS = (0.05, 0.1, 0.25, 0.5)
LOAD = 0.8


def sweep():
    rows = []
    for fraction in FRACTIONS:
        acc = {}
        for scheme in ("slid", "mlid"):
            res = run_point(
                8, 2, scheme, "centric", LOAD,
                cfg=SimConfig(num_vls=1),
                hotspot_fraction=fraction,
                warmup_ns=20_000, measure_ns=80_000, seed=1,
            )
            acc[scheme] = res["accepted"]
        rows.append(
            {
                "fraction": fraction,
                "slid": acc["slid"],
                "mlid": acc["mlid"],
                "mlid/slid": acc["mlid"] / acc["slid"],
            }
        )
    return rows


def test_hot_fraction(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a12_hot_fraction",
        render_table(
            rows, title=f"A12: centric fraction sweep, FT(8,2) @ {LOAD}, 1 VL"
        ),
    )
    for row in rows:
        assert row["mlid/slid"] > 0.95  # MLID never loses materially
    assert max(row["mlid/slid"] for row in rows) > 1.03  # and wins somewhere
