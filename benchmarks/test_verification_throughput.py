"""Static-verification throughput: scalar tracer vs vectorized kernel.

Verifies the full FT(16, 2) fabric (512 nodes, 4096 LIDs by default;
``REPRO_BENCH_FULL=1`` adds FT(4, 3) and SLID columns) twice — once
through the historical scalar per-hop tracer and once through the
compiled route kernel — and reports paths/sec for each.  Both engines
must agree on the number of routes checked (they run the identical
delivery + minimality + up*/down* checks), and the kernel must clear
the ≥ 10× acceptance bar from ISSUE 2.

Kernel timing includes compilation (``RouteKernel.from_scheme``): the
reported speedup is what a cold ``repro-ibft verify`` call actually
gets, not a warm-cache best case.
"""

from __future__ import annotations

import os
import time

from repro.core import verification as verification
from repro.core.kernel import RouteKernel
from repro.core.scheme import get_scheme
from repro.experiments.report import render_table
from repro.topology.fattree import FatTree

MIN_SPEEDUP = 10.0


def _grid():
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    grid = [(16, 2, "mlid")]
    if full:
        grid += [(16, 2, "slid"), (4, 3, "mlid")]
    return grid


def measure():
    rows = []
    for m, n, name in _grid():
        scheme = get_scheme(name, FatTree(m, n))

        t0 = time.perf_counter()
        scalar_checked = verification.verify_scheme(scheme, use_kernel=False)
        scalar_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        kernel = RouteKernel.from_scheme(scheme)  # cold compile included
        kernel_checked = kernel.verify()
        kernel_s = time.perf_counter() - t0

        assert kernel_checked == scalar_checked
        rows.append(
            {
                "fabric": f"FT({m},{n}) {name}",
                "paths": scalar_checked,
                "scalar s": scalar_s,
                "kernel s": kernel_s,
                "scalar paths/s": scalar_checked / scalar_s,
                "kernel paths/s": kernel_checked / kernel_s,
                "speedup": scalar_s / kernel_s,
            }
        )
    return rows


def test_verification_throughput(benchmark, save_result):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = render_table(
        rows,
        title=(
            "static verification throughput — scalar tracer vs route "
            "kernel (delivery + minimality + up*/down*, all LIDs)"
        ),
    )
    save_result("verification_throughput", text)
    headline = rows[0]
    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"kernel speedup {headline['speedup']:.1f}x on {headline['fabric']} "
        f"is below the {MIN_SPEEDUP:.0f}x acceptance bar"
    )
