"""A4 — sensitivity to the two reconstruction choices (DESIGN.md §3).

The paper does not specify (a) the endnode injection discipline or
(b) the switch's routing concurrency.  This ablation runs the centric
and uniform headline comparisons under all four combinations and shows
which choices the qualitative result (MLID >= SLID) depends on:

* with single-FIFO sources, hot-spot results equalize (any scheme's
  drain collapses to the per-source hot share) — per-destination
  queues are required for Observation 3;
* with unlimited per-port routing engines, uniform saturation is
  link/HoL-bound and SLID's destination-rooted trees edge out MLID —
  the shared engine is required for Observation 1's port scaling.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import run_point
from repro.ib.config import SimConfig

COMBOS = [
    ("per_destination", 1),  # paper-matching defaults
    ("per_destination", 0),
    ("fifo", 1),
    ("fifo", 0),
]


def sweep():
    rows = []
    for queueing, engines in COMBOS:
        cfg = SimConfig(
            num_vls=1,
            injection_queueing=queueing,
            routing_engines_per_switch=engines,
        )
        for pattern, load in (("centric", 0.8), ("uniform", 0.8)):
            acc = {}
            for scheme in ("slid", "mlid"):
                res = run_point(
                    8, 2, scheme, pattern, load,
                    cfg=cfg, warmup_ns=20_000, measure_ns=60_000, seed=1,
                )
                acc[scheme] = res["accepted"]
            rows.append(
                {
                    "injection": queueing,
                    "engines": engines or "per-port",
                    "pattern": pattern,
                    "slid": acc["slid"],
                    "mlid": acc["mlid"],
                    "mlid/slid": acc["mlid"] / acc["slid"],
                }
            )
    return rows


def test_model_knobs(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "a4_model_knobs",
        render_table(rows, title="A4: reconstruction-choice sensitivity @ 0.8"),
    )
    default = next(
        r
        for r in rows
        if r["injection"] == "per_destination"
        and r["engines"] == 1
        and r["pattern"] == "centric"
    )
    # Under the chosen defaults, MLID wins the centric comparison.
    assert default["mlid/slid"] > 1.0
