"""F14 — paper Figure 14: uniform traffic on the 16-port-2-tree.

Reproduces the latency-vs-accepted-traffic curves for SLID and MLID at
1, 2 and 4 virtual lanes (quick grid by default; set REPRO_BENCH_FULL=1
for the full sweep).  Shape expectations recorded in EXPERIMENTS.md:
MLID saturation throughput >= SLID's, the gap growing with port count
and under hot-spot (centric) traffic; MLID latency exceeds SLID's near
saturation at equal offered load (paper Observation 2).
"""


def test_fig14(figure_bench):
    result = figure_bench("fig14")
    # Every (scheme, VL) curve must carry traffic on the quick grid.
    for (scheme, vls), points in result.curves.items():
        assert max(p.accepted for p in points) > 0.0
