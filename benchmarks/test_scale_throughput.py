"""A16 — flow-level scale throughput and hybrid-vs-packet agreement.

Two gates from DESIGN.md §11:

* **Agreement.**  On every figure config it runs, hybrid mode must
  reproduce the packet-only saturation throughput within
  ``AGREEMENT_RTOL``.  Hybrid's packet-backed points are bit-identical
  to packet mode by construction, so any disagreement comes from
  below-knee points where the flow model's exact ``accepted = offered``
  replaces the simulator's (noisy) estimate — small by definition of
  the knee.  The default run checks the 4-port figures under both
  traffic patterns (CI smoke: ``pytest benchmarks/test_scale_throughput.py
  -q --benchmark-disable``); ``REPRO_BENCH_FULL=1`` checks every paper
  figure.

* **Scale.**  A full fig-style sweep (both schemes, the full load
  grid) through the flow-level evaluator, timed end to end (model
  compile + every point) and persisted to
  ``benchmarks/results/BENCH_scale.json``.  The full grid is FT(32, 3)
  — 8192 nodes, 2 097 152 LIDs, far beyond the packet simulator — and
  must finish in minutes; the quick grid stands in FT(16, 2) so CI
  exercises the same path in seconds.

The scale sweep uses per-port routing engines
(``routing_engines_per_switch=0``, the paper's switch model, as in
``test_engine_throughput.py``): with the default shared-engine pool
every FT(32, 3) curve saturates at the engine bound near offered 0.08
and the load grid would be flat.
"""

from __future__ import annotations

import math
import os
import time

from repro.experiments import flowlevel
from repro.experiments.configs import FIGURES, get_experiment
from repro.experiments.report import render_table
from repro.experiments.sweep import run_figure, saturation_throughput
from repro.ib.config import SimConfig

from conftest import write_bench_report


FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Documented hybrid-vs-packet saturation tolerance.  Measured deltas
#: are far smaller (the saturating point is packet-backed and therefore
#: bit-identical on every config checked); the margin covers configs
#: whose saturation lands on a below-knee flow point, where the flow
#: model returns ``offered`` exactly while the simulator under-counts
#: by its measurement-window noise.
AGREEMENT_RTOL = 0.05

#: Both traffic patterns on the smallest fabric by default; every paper
#: figure under REPRO_BENCH_FULL=1.
AGREEMENT_FIGS = tuple(FIGURES) if FULL else ("fig12", "fig16")


def test_hybrid_matches_packet_saturation(save_result):
    rows = []
    for fig_id in AGREEMENT_FIGS:
        config = get_experiment(fig_id)
        packet = run_figure(config, quick=True)
        hybrid = run_figure(config, quick=True, mode="hybrid")
        assert set(packet.curves) == set(hybrid.curves)
        for key in sorted(packet.curves):
            scheme, vls = key
            p_sat = saturation_throughput(packet.curves[key])
            h_sat = saturation_throughput(hybrid.curves[key])
            rel = abs(h_sat - p_sat) / p_sat
            backends = [pt.backend for pt in hybrid.curves[key]]
            rows.append(
                {
                    "figure": fig_id,
                    "scheme": scheme,
                    "vls": vls,
                    "packet_sat": p_sat,
                    "hybrid_sat": h_sat,
                    "rel_delta": rel,
                    "flow_points": backends.count("flow"),
                    "packet_points": backends.count("packet"),
                }
            )
            assert rel <= AGREEMENT_RTOL, (
                f"{fig_id} {key}: hybrid saturation {h_sat:.4f} vs "
                f"packet {p_sat:.4f} ({rel:.1%} > {AGREEMENT_RTOL:.0%})"
            )
    text = render_table(
        rows,
        title=(
            f"hybrid vs packet saturation (quick grids, "
            f"tolerance {AGREEMENT_RTOL:.0%})"
        ),
    )
    save_result("scale_hybrid_agreement", text)


def _scale_setup():
    """(config, loads, base_cfg) of the scale sweep for this grid."""
    if FULL:
        config = get_experiment("a16_scale_flow")
        loads = config.loads
    else:
        config = get_experiment("fig14")  # FT(16, 2): same path, seconds
        loads = config.quick_loads
    base_cfg = SimConfig(routing_engines_per_switch=0)
    return config, loads, base_cfg


def test_scale_flow_sweep():
    """Headline: a full fig-style sweep through the flow evaluator,
    timed end to end.  Writes BENCH_scale.json."""
    config, loads, base_cfg = _scale_setup()
    flowlevel.clear_flow_models()

    compile_stats = {}
    t_total = time.perf_counter()
    for scheme in config.schemes:
        t0 = time.perf_counter()
        model = flowlevel.get_flow_model(
            config.m, config.n, scheme, config.pattern, config.hotspot_fraction
        )
        compile_stats[scheme] = {
            "seconds": round(time.perf_counter() - t0, 2),
            "flow_classes": model.num_classes,
            "route_codes": int(model.flat_codes.size),
            "knee_offered": round(
                flowlevel.DEFAULT_KNEE_THRESHOLD
                / flowlevel.knee_utilization(model, base_cfg, 1.0),
                4,
            ),
        }

    t0 = time.perf_counter()
    result = run_figure(
        config, quick=not FULL, base_cfg=base_cfg, mode="flow"
    )
    eval_wall = time.perf_counter() - t0
    total_wall = time.perf_counter() - t_total

    curves = {}
    for (scheme, vls), points in sorted(result.curves.items()):
        assert [p.backend for p in points] == ["flow"] * len(loads)
        sat = saturation_throughput(points)
        assert sat > 0 and not math.isnan(sat)
        curves[f"{scheme}/vl{vls}"] = {
            "saturation": round(sat, 4),
            "low_load_latency_ns": round(points[0].latency_mean, 1),
            "accepted": [round(p.accepted, 4) for p in points],
        }

    num_points = len(result.curves) * len(loads)
    path = write_bench_report(
        "BENCH_scale.json",
        (
            f"FT({config.m},{config.n}) fig-style flow-level sweep "
            f"({config.num_nodes} nodes, {config.pattern} traffic)"
        ),
        full=FULL,
        config={
            "m": config.m,
            "n": config.n,
            "mode": "flow",
            "pattern": config.pattern,
            "schemes": list(config.schemes),
            "vl_counts": list(config.vl_counts),
            "loads": list(loads),
            "routing_engines_per_switch": 0,
        },
        compile=compile_stats,
        wall_s={
            "compile": round(total_wall - eval_wall, 2),
            "evaluate": round(eval_wall, 2),
            "total": round(total_wall, 2),
        },
        points=num_points,
        points_per_s=round(num_points / eval_wall, 2),
        curves=curves,
    )
    print(
        f"\nFT({config.m},{config.n}) flow-level sweep: {num_points} points "
        f"in {total_wall:.1f}s "
        f"({round(total_wall - eval_wall, 2)}s compile) -> {path}"
    )
