"""A16/A17 — flow-level scale throughput and hybrid-vs-packet agreement.

Two gates from DESIGN.md §11, updated for the §15 fast path:

* **Agreement.**  On every figure config it runs, hybrid mode must
  reproduce the packet-only saturation throughput within
  ``AGREEMENT_RTOL``.  Hybrid's packet-backed points are bit-identical
  to packet mode by construction, so any disagreement comes from
  below-knee points where the flow model's exact ``accepted = offered``
  replaces the simulator's (noisy) estimate — small by definition of
  the knee.  The default run checks the 4-port figures under both
  traffic patterns (CI smoke: ``pytest benchmarks/test_scale_throughput.py
  -q --benchmark-disable``); ``REPRO_BENCH_FULL=1`` checks every paper
  figure.

* **Scale.**  Full fig-style sweeps through the flow-level evaluator,
  timed per phase (cold symmetry-folded compile, warm disk reload,
  point evaluation, fixed-point iterations warm- vs cold-started) and
  persisted to ``benchmarks/results/BENCH_scale.json``.  The full grid
  runs FT(32, 3) — 8192 nodes, 2 097 152 LIDs, far beyond the packet
  simulator — plus the first FT(64, 2) row; the quick grid stands in
  FT(16, 2) so CI exercises the same path in seconds.

The scale sweep uses per-port routing engines
(``routing_engines_per_switch=0``, the paper's switch model, as in
``test_engine_throughput.py``): with the default shared-engine pool
every FT(32, 3) curve saturates at the engine bound near offered 0.08
and the load grid would be flat.

Timing protocol: compile and evaluation are wall-clock on whatever
this host is; the headline comparison is against the recorded
*unfolded, serial* FT(32, 3) baseline of this same benchmark
(``BASELINE_FT32_TOTAL_S``, measured before symmetry folding landed),
same grid, same schemes, same config.  The cold phase compiles from
scratch into a private model store; the warm phase drops the
in-process LRU and reloads memory-mapped artifacts from that store,
so the report separates "first run ever" from "every run after".
"""

from __future__ import annotations

import math
import os
import tempfile
import time

from repro.experiments import flowlevel
from repro.experiments.configs import FIGURES, get_experiment
from repro.experiments.report import render_table
from repro.experiments.sweep import run_figure, saturation_throughput
from repro.ib.config import SimConfig

from conftest import write_bench_report


FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Documented hybrid-vs-packet saturation tolerance.  Measured deltas
#: are far smaller (the saturating point is packet-backed and therefore
#: bit-identical on every config checked); the margin covers configs
#: whose saturation lands on a below-knee flow point, where the flow
#: model returns ``offered`` exactly while the simulator under-counts
#: by its measurement-window noise.
AGREEMENT_RTOL = 0.05

#: Both traffic patterns on the smallest fabric by default; every paper
#: figure under REPRO_BENCH_FULL=1.
AGREEMENT_FIGS = tuple(FIGURES) if FULL else ("fig12", "fig16")

#: Recorded total of this benchmark's FT(32, 3) full sweep *before*
#: the symmetry-folded fast path (unfolded compile + serial cold
#: solves) — the number the fast path is gated against.
BASELINE_FT32_TOTAL_S = 1520.43

#: FT(32, 3) is the paper-scale headline; FT(64, 2) is the widest
#: radix the LMC budget admits, first measured by this benchmark.
SCALE_CONFIGS = ("a16_scale_flow", "a17_scale_flow64") if FULL else ("fig14",)


def test_hybrid_matches_packet_saturation(save_result):
    rows = []
    for fig_id in AGREEMENT_FIGS:
        config = get_experiment(fig_id)
        packet = run_figure(config, quick=True)
        hybrid = run_figure(config, quick=True, mode="hybrid")
        assert set(packet.curves) == set(hybrid.curves)
        for key in sorted(packet.curves):
            scheme, vls = key
            p_sat = saturation_throughput(packet.curves[key])
            h_sat = saturation_throughput(hybrid.curves[key])
            rel = abs(h_sat - p_sat) / p_sat
            backends = [pt.backend for pt in hybrid.curves[key]]
            rows.append(
                {
                    "figure": fig_id,
                    "scheme": scheme,
                    "vls": vls,
                    "packet_sat": p_sat,
                    "hybrid_sat": h_sat,
                    "rel_delta": rel,
                    "flow_points": backends.count("flow"),
                    "packet_points": backends.count("packet"),
                }
            )
            assert rel <= AGREEMENT_RTOL, (
                f"{fig_id} {key}: hybrid saturation {h_sat:.4f} vs "
                f"packet {p_sat:.4f} ({rel:.1%} > {AGREEMENT_RTOL:.0%})"
            )
    text = render_table(
        rows,
        title=(
            f"hybrid vs packet saturation (quick grids, "
            f"tolerance {AGREEMENT_RTOL:.0%})"
        ),
    )
    save_result("scale_hybrid_agreement", text)


def _sweep_one_fabric(config, base_cfg, store):
    """Timed phases of one fabric's fig-style flow sweep."""
    loads = config.loads if FULL else config.quick_loads
    flowlevel.clear_flow_models()

    # -- cold: symmetry-folded compile from scratch, spilled to disk --
    compile_stats = {}
    t_fabric = time.perf_counter()
    for scheme in config.schemes:
        t0 = time.perf_counter()
        model = flowlevel.get_flow_model(
            config.m,
            config.n,
            scheme,
            config.pattern,
            config.hotspot_fraction,
            store=store,
        )
        compile_stats[scheme] = {
            "seconds": time.perf_counter() - t0,
            "folded": model.folded,
            "flow_classes": model.num_classes,
            "total_classes": model.total_classes,
            "route_codes": int(model.flat_codes.size),
            "knee_offered": round(
                flowlevel.DEFAULT_KNEE_THRESHOLD
                / flowlevel.knee_utilization(model, base_cfg, 1.0),
                4,
            ),
        }
    compile_wall = time.perf_counter() - t_fabric

    # -- warm: drop the LRU, reload the mmap artifacts from disk ------
    flowlevel.clear_flow_models()
    t0 = time.perf_counter()
    for scheme in config.schemes:
        flowlevel.get_flow_model(
            config.m,
            config.n,
            scheme,
            config.pattern,
            config.hotspot_fraction,
            store=store,
        )
    warm_load_wall = time.perf_counter() - t0

    # -- fixed-point iteration breakdown: warm vs cold starts ---------
    iteration_stats = {}
    solve_wall = 0.0
    for scheme in config.schemes:
        model = flowlevel.get_flow_model(
            config.m,
            config.n,
            scheme,
            config.pattern,
            config.hotspot_fraction,
            store=store,
        )
        cfg = base_cfg.with_vls(config.vl_counts[0])
        t0 = time.perf_counter()
        warm = flowlevel.evaluate_curve(model, cfg, loads, warm_start=True)
        warm_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        cold = flowlevel.evaluate_curve(model, cfg, loads, warm_start=False)
        cold_s = time.perf_counter() - t0
        solve_wall += warm_s
        iteration_stats[scheme] = {
            "warm_iterations": sum(r["iterations"] for r in warm),
            "cold_iterations": sum(r["iterations"] for r in cold),
            "warm_solve_s": warm_s,
            "cold_solve_s": cold_s,
        }

    # -- the real sweep stack (warm models, warm-started curves) ------
    t0 = time.perf_counter()
    result = run_figure(config, quick=not FULL, base_cfg=base_cfg, mode="flow")
    eval_wall = time.perf_counter() - t0
    total_wall = time.perf_counter() - t_fabric

    curves = {}
    for (scheme, vls), points in sorted(result.curves.items()):
        assert [p.backend for p in points] == ["flow"] * len(loads)
        sat = saturation_throughput(points)
        assert sat > 0 and not math.isnan(sat)
        curves[f"{scheme}/vl{vls}"] = {
            "saturation": round(sat, 4),
            "low_load_latency_ns": round(points[0].latency_mean, 1),
            "accepted": [round(p.accepted, 4) for p in points],
        }

    num_points = len(result.curves) * len(loads)
    return {
        "nodes": config.num_nodes,
        "loads": list(loads),
        "compile": compile_stats,
        "iterations": iteration_stats,
        "wall_s": {
            "compile_cold": compile_wall,
            "model_reload_warm": warm_load_wall,
            "evaluate": eval_wall,
            "total": total_wall,
        },
        "points": num_points,
        "points_per_s": num_points / eval_wall,
        "curves": curves,
    }


def test_scale_flow_sweep():
    """Headline: full fig-style sweeps through the flow evaluator,
    phase-timed per fabric.  Writes BENCH_scale.json."""
    base_cfg = SimConfig(routing_engines_per_switch=0)
    fabrics = {}
    with tempfile.TemporaryDirectory(prefix="repro-flow-bench-") as store:
        for cfg_id in SCALE_CONFIGS:
            config = get_experiment(cfg_id)
            fabrics[f"ft{config.m}x{config.n}"] = _sweep_one_fabric(
                config, base_cfg, store
            )
    flowlevel.clear_flow_models()

    sections = dict(fabrics=fabrics)
    if FULL:
        ft32_total = fabrics["ft32x3"]["wall_s"]["total"]
        sections["headline"] = {
            "baseline_ft32x3_total_s": BASELINE_FT32_TOTAL_S,
            "fastpath_ft32x3_total_s": ft32_total,
            "speedup": BASELINE_FT32_TOTAL_S / ft32_total,
        }
        # The tentpole gate: >= 5x over the recorded unfolded baseline.
        assert ft32_total * 5 <= BASELINE_FT32_TOTAL_S, (
            f"FT(32,3) sweep took {ft32_total:.1f}s; needs "
            f"<= {BASELINE_FT32_TOTAL_S / 5:.1f}s for the 5x gate"
        )

    path = write_bench_report(
        "BENCH_scale.json",
        "fig-style flow-level sweeps at scale (symmetry-folded fast path)",
        full=FULL,
        config={
            "mode": "flow",
            "fold": True,
            "warm_start": True,
            "configs": list(SCALE_CONFIGS),
            "routing_engines_per_switch": 0,
        },
        protocol={
            "phases": (
                "compile_cold = folded compile from scratch + disk spill; "
                "model_reload_warm = LRU dropped, mmap reload from store; "
                "evaluate = run_figure(mode='flow') over warm models; "
                "iterations compare warm- vs cold-started fixed points "
                "on the same load grid"
            ),
            "baseline": (
                f"speedup is vs the recorded unfolded serial FT(32,3) "
                f"total of {BASELINE_FT32_TOTAL_S}s (same benchmark, "
                f"same grid, before symmetry folding)"
            ),
        },
        **sections,
    )
    for name, fab in fabrics.items():
        wall = fab["wall_s"]
        print(
            f"\n{name}: {fab['points']} points in {wall['total']:.2f}s "
            f"(compile {wall['compile_cold']:.2f}s, warm reload "
            f"{wall['model_reload_warm']:.3f}s, evaluate "
            f"{wall['evaluate']:.2f}s) -> {path}"
        )
